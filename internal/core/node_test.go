package core

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"uavmw/internal/encoding"
	"uavmw/internal/filetransfer"
	"uavmw/internal/naming"
	"uavmw/internal/presentation"
	"uavmw/internal/protocol"
	"uavmw/internal/qos"
	"uavmw/internal/rpc"
	"uavmw/internal/scheduler"
	"uavmw/internal/transport"
	"uavmw/internal/variables"
)

var gpsType = presentation.MustParse("{lat:f64,lon:f64,alt:f32,fix:u8}")

func gpsValue(lat float64) map[string]any {
	return map[string]any{"lat": lat, "lon": 2.1, "alt": float32(120), "fix": uint8(3)}
}

// newBusNode builds a container on a shared in-process bus with fast
// discovery for tests.
func newBusNode(t *testing.T, bus *transport.Bus, id transport.NodeID, opts ...NodeOption) *Node {
	t.Helper()
	ep, err := bus.Endpoint(id)
	if err != nil {
		t.Fatal(err)
	}
	all := append([]NodeOption{
		WithDatagram(ep),
		WithAnnouncePeriod(25 * time.Millisecond),
		WithARQ(protocol.WithTimeout(5 * time.Millisecond)),
		WithFileTransfer(filetransfer.WithQueryWindow(10 * time.Millisecond)),
	}, opts...)
	n, err := NewNode(all...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = n.Close() })
	return n
}

// waitUntil polls cond until true or the timeout elapses.
func waitUntil(t *testing.T, timeout time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timeout waiting for %s", what)
}

// syncNodes waits until each node sees every other node's announcements.
func syncNodes(t *testing.T, nodes ...*Node) {
	t.Helper()
	for _, n := range nodes {
		n.AnnounceNow()
	}
	for _, a := range nodes {
		for _, b := range nodes {
			if a == b {
				continue
			}
			b := b
			a := a
			waitUntil(t, 2*time.Second, fmt.Sprintf("%s to see %s", a.ID(), b.ID()), func() bool {
				for _, peer := range a.Peers() {
					if peer == b.ID() {
						return true
					}
				}
				return false
			})
		}
	}
}

func TestDiscoveryPropagatesRecords(t *testing.T) {
	bus := transport.NewBus()
	pub := newBusNode(t, bus, "pub")
	sub := newBusNode(t, bus, "sub")

	if _, err := pub.Variables().Offer("gps.position", "gps", gpsType, qos.VariableQoS{}); err != nil {
		t.Fatal(err)
	}
	pub.AnnounceNow()
	waitUntil(t, 2*time.Second, "directory record", func() bool {
		return sub.Directory().ProviderCount(naming.KindVariable, "gps.position") == 1
	})
}

func TestVariablePubSubAcrossNodes(t *testing.T) {
	bus := transport.NewBus()
	pub := newBusNode(t, bus, "uav")
	sub := newBusNode(t, bus, "gs")
	syncNodes(t, pub, sub)

	p, err := pub.Variables().Offer("gps.position", "gps", gpsType, qos.VariableQoS{Validity: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	pub.AnnounceNow()

	var got atomic.Value
	s, err := sub.Variables().Subscribe("gps.position", gpsType, variables.SubscribeOptions{
		OnSample: func(v any, ts time.Time) { got.Store(v) },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	waitUntil(t, 2*time.Second, "sample delivery", func() bool {
		if err := p.Publish(gpsValue(41.5)); err != nil {
			t.Fatalf("Publish: %v", err)
		}
		v, _, err := s.Get()
		if err != nil {
			return false
		}
		return v.(map[string]any)["lat"] == 41.5
	})
	if got.Load() == nil {
		t.Error("OnSample callback never fired")
	}
	samples, _ := s.Stats()
	if samples == 0 {
		t.Error("no samples counted")
	}
}

func TestVariableLocalBypass(t *testing.T) {
	bus := transport.NewBus()
	n := newBusNode(t, bus, "solo")

	p, err := n.Variables().Offer("v", "svc", presentation.Float64(), qos.VariableQoS{})
	if err != nil {
		t.Fatal(err)
	}
	s, err := n.Variables().Subscribe("v", presentation.Float64(), variables.SubscribeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := p.Publish(3.5); err != nil {
		t.Fatal(err)
	}
	// Local delivery is synchronous in the engine; no network wait.
	v, _, err := s.Get()
	if err != nil {
		t.Fatalf("Get after local publish: %v", err)
	}
	if v != 3.5 {
		t.Errorf("got %v", v)
	}
}

func TestVariableValidityStale(t *testing.T) {
	bus := transport.NewBus()
	n := newBusNode(t, bus, "solo")
	p, err := n.Variables().Offer("v", "svc", presentation.Int32(), qos.VariableQoS{Validity: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	s, err := n.Variables().Subscribe("v", presentation.Int32(), variables.SubscribeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := p.Publish(7); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Get(); err != nil {
		t.Fatalf("fresh value: %v", err)
	}
	time.Sleep(80 * time.Millisecond)
	if _, _, err := s.Get(); !errors.Is(err, variables.ErrStale) {
		t.Errorf("want ErrStale, got %v", err)
	}
	// A republish revives it.
	if err := p.Publish(8); err != nil {
		t.Fatal(err)
	}
	if v, _, err := s.Get(); err != nil || v != int32(8) {
		t.Errorf("revived value %v err %v", v, err)
	}
}

func TestVariableSilenceTimeout(t *testing.T) {
	bus := transport.NewBus()
	n := newBusNode(t, bus, "solo")
	var timeouts atomic.Int64
	s, err := n.Variables().Subscribe("quiet", presentation.Int32(), variables.SubscribeOptions{
		QoS:       qos.VariableQoS{Period: 20 * time.Millisecond},
		OnTimeout: func(time.Duration) { timeouts.Add(1) },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	waitUntil(t, 2*time.Second, "silence warning", func() bool { return timeouts.Load() >= 1 })
}

func TestVariableInitialSnapshot(t *testing.T) {
	bus := transport.NewBus()
	pub := newBusNode(t, bus, "uav")
	sub := newBusNode(t, bus, "gs")
	syncNodes(t, pub, sub)

	p, err := pub.Variables().Offer("cfg", "svc", presentation.Int32(), qos.VariableQoS{})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Publish(42); err != nil {
		t.Fatal(err)
	}
	pub.AnnounceNow()
	waitUntil(t, 2*time.Second, "publisher visible", func() bool {
		return sub.Directory().ProviderCount(naming.KindVariable, "cfg") == 1
	})

	// The subscriber gets the last value immediately, without waiting for
	// the next periodic publish (§4.1 guaranteed initial exact value).
	s, err := sub.Variables().Subscribe("cfg", presentation.Int32(), variables.SubscribeOptions{
		RequireInitial: true,
		InitialTimeout: 2 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	v, _, err := s.Get()
	if err != nil {
		t.Fatalf("Get after snapshot: %v", err)
	}
	if v != int32(42) {
		t.Errorf("initial value %v", v)
	}
}

func TestEventDeliveryAcrossNodes(t *testing.T) {
	bus := transport.NewBus()
	pub := newBusNode(t, bus, "uav")
	sub := newBusNode(t, bus, "gs")
	syncNodes(t, pub, sub)

	p, err := pub.Events().Offer("mission.alert", "mc", presentation.String_(), qos.EventQoS{})
	if err != nil {
		t.Fatal(err)
	}
	pub.AnnounceNow()
	waitUntil(t, 2*time.Second, "event record", func() bool {
		return sub.Directory().ProviderCount(naming.KindEvent, "mission.alert") == 1
	})

	var received atomic.Value
	_, err = sub.Events().Subscribe("mission.alert", presentation.String_(), qos.EventQoS{},
		func(v any, from transport.NodeID) { received.Store(v) })
	if err != nil {
		t.Fatal(err)
	}
	waitUntil(t, 2*time.Second, "publisher learns subscriber", func() bool {
		return len(p.Subscribers()) == 1
	})

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if err := p.Publish(ctx, "engine overheat"); err != nil {
		t.Fatalf("Publish: %v", err)
	}
	waitUntil(t, 2*time.Second, "event handler", func() bool {
		v := received.Load()
		return v != nil && v.(string) == "engine overheat"
	})
}

func TestEventGuaranteedUnderLoss(t *testing.T) {
	// Even at heavy loss the ARQ path delivers every event (§4.2).
	t.Skip("moved to netsim integration test in loss_test.go")
}

func TestRPCLocalAndRemote(t *testing.T) {
	bus := transport.NewBus()
	server := newBusNode(t, bus, "srv")
	client := newBusNode(t, bus, "cli")
	syncNodes(t, server, client)

	argT := presentation.MustParse("{a:i32,b:i32}")
	retT := presentation.Int32()
	err := server.RPC().Register("math.add", "calc", argT, retT, qos.CallQoS{},
		func(args any) (any, error) {
			m := args.(map[string]any)
			return m["a"].(int32) + m["b"].(int32), nil
		})
	if err != nil {
		t.Fatal(err)
	}
	server.AnnounceNow()
	waitUntil(t, 2*time.Second, "function record", func() bool {
		return client.Directory().ProviderCount(naming.KindFunction, "math.add") == 1
	})

	ctx := context.Background()
	// Remote call.
	got, err := client.RPC().Call(ctx, "math.add", map[string]any{"a": 2, "b": 3}, argT, retT, qos.CallQoS{})
	if err != nil {
		t.Fatalf("remote call: %v", err)
	}
	if got != int32(5) {
		t.Errorf("remote result %v", got)
	}
	// Local call on the server node (bypass).
	got, err = server.RPC().Call(ctx, "math.add", map[string]any{"a": 10, "b": 20}, argT, retT, qos.CallQoS{})
	if err != nil {
		t.Fatalf("local call: %v", err)
	}
	if got != int32(30) {
		t.Errorf("local result %v", got)
	}
	if server.RPC().Calls("math.add") != 2 {
		t.Errorf("call count = %d", server.RPC().Calls("math.add"))
	}
}

func TestRPCAppErrorNoFailover(t *testing.T) {
	bus := transport.NewBus()
	server := newBusNode(t, bus, "srv")
	client := newBusNode(t, bus, "cli")
	syncNodes(t, server, client)

	err := server.RPC().Register("always.fails", "svc", nil, nil, qos.CallQoS{},
		func(any) (any, error) { return nil, errors.New("boom") })
	if err != nil {
		t.Fatal(err)
	}
	server.AnnounceNow()
	waitUntil(t, 2*time.Second, "function record", func() bool {
		return client.Directory().ProviderCount(naming.KindFunction, "always.fails") == 1
	})

	_, err = client.RPC().Call(context.Background(), "always.fails", nil, nil, nil, qos.CallQoS{})
	var appErr *rpc.AppError
	if !errors.As(err, &appErr) {
		t.Fatalf("want AppError, got %v", err)
	}
}

func TestRPCNoProvider(t *testing.T) {
	bus := transport.NewBus()
	client := newBusNode(t, bus, "cli")
	_, err := client.RPC().Call(context.Background(), "ghost.fn", nil, nil, nil, qos.CallQoS{})
	if err == nil {
		t.Fatal("call to unprovided function must fail")
	}
}

func TestFileTransferAcrossNodes(t *testing.T) {
	bus := transport.NewBus()
	pub := newBusNode(t, bus, "camera")
	sub := newBusNode(t, bus, "storage")
	syncNodes(t, pub, sub)

	data := make([]byte, 100_000)
	for i := range data {
		data[i] = byte(i * 7)
	}
	if _, err := pub.Files().Offer("photo.42", "camera", data, qos.TransferQoS{}); err != nil {
		t.Fatal(err)
	}
	pub.AnnounceNow()
	waitUntil(t, 2*time.Second, "file record", func() bool {
		return sub.Directory().ProviderCount(naming.KindFile, "photo.42") == 1
	})

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	got, rev, err := sub.Files().Fetch(ctx, "photo.42", filetransfer.FetchOptions{})
	if err != nil {
		t.Fatalf("Fetch: %v", err)
	}
	if rev != 1 {
		t.Errorf("revision = %d", rev)
	}
	if len(got) != len(data) {
		t.Fatalf("size %d vs %d", len(got), len(data))
	}
	for i := range data {
		if got[i] != data[i] {
			t.Fatalf("corruption at %d", i)
		}
	}
}

func TestFileLocalBypass(t *testing.T) {
	bus := transport.NewBus()
	n := newBusNode(t, bus, "solo")
	data := []byte("local resource")
	if _, err := n.Files().Offer("cfg", "svc", data, qos.TransferQoS{}); err != nil {
		t.Fatal(err)
	}
	before := n.datagramStats().PacketsSent
	got, _, err := n.Files().Fetch(context.Background(), "cfg", filetransfer.FetchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(data) {
		t.Errorf("got %q", got)
	}
	if after := n.datagramStats().PacketsSent; after != before {
		t.Errorf("local fetch sent %d packets", after-before)
	}
}

func TestServiceLifecycle(t *testing.T) {
	bus := transport.NewBus()
	n := newBusNode(t, bus, "solo")

	svc := &testService{name: "gps"}
	rt, err := n.AddService(svc)
	if err != nil {
		t.Fatal(err)
	}
	if rt.State() != ServiceRegistered {
		t.Errorf("state = %v", rt.State())
	}
	if err := n.StartServices(); err != nil {
		t.Fatal(err)
	}
	if rt.State() != ServiceRunning {
		t.Errorf("state = %v", rt.State())
	}
	if svc.inits != 1 || svc.starts != 1 {
		t.Errorf("inits=%d starts=%d", svc.inits, svc.starts)
	}
	if err := n.StopService("gps"); err != nil {
		t.Fatal(err)
	}
	if rt.State() != ServiceStopped || svc.stops != 1 {
		t.Errorf("state=%v stops=%d", rt.State(), svc.stops)
	}
	// Stopping again is an error.
	if err := n.StopService("gps"); !errors.Is(err, ErrBadState) {
		t.Errorf("double stop: %v", err)
	}
}

type testService struct {
	name                 string
	inits, starts, stops int
	initErr              error
	onInit               func(ctx *Context) error
	manifest             Manifest
}

func (s *testService) Name() string { return s.name }
func (s *testService) Init(ctx *Context) error {
	s.inits++
	if s.onInit != nil {
		if err := s.onInit(ctx); err != nil {
			return err
		}
	}
	return s.initErr
}
func (s *testService) Start(*Context) error { s.starts++; return nil }
func (s *testService) Stop(*Context) error  { s.stops++; return nil }
func (s *testService) Manifest() Manifest   { return s.manifest }

func TestServiceResourceAdmission(t *testing.T) {
	bus := transport.NewBus()
	n := newBusNode(t, bus, "solo", WithResourceBudget(ResourceBudget{MemoryKB: 1000, CPUShare: 1.0}))

	if _, err := n.AddService(&testService{name: "big", manifest: Manifest{MemoryKB: 800}}); err != nil {
		t.Fatal(err)
	}
	if _, err := n.AddService(&testService{name: "too-big", manifest: Manifest{MemoryKB: 300}}); !errors.Is(err, ErrAdmission) {
		t.Errorf("memory admission: %v", err)
	}
	if _, err := n.AddService(&testService{name: "cpu-hog", manifest: Manifest{CPUShare: 1.5}}); !errors.Is(err, ErrAdmission) {
		t.Errorf("cpu admission: %v", err)
	}
	if _, err := n.AddService(&testService{name: "fits", manifest: Manifest{MemoryKB: 200, CPUShare: 0.5}}); err != nil {
		t.Errorf("fitting service rejected: %v", err)
	}
}

func TestServiceExclusiveDevices(t *testing.T) {
	bus := transport.NewBus()
	n := newBusNode(t, bus, "solo")
	if _, err := n.AddService(&testService{name: "cam1", manifest: Manifest{Devices: []string{"/dev/video0"}}}); err != nil {
		t.Fatal(err)
	}
	if _, err := n.AddService(&testService{name: "cam2", manifest: Manifest{Devices: []string{"/dev/video0"}}}); !errors.Is(err, ErrDeviceBusy) {
		t.Errorf("device conflict: %v", err)
	}
	// Released on stop.
	if err := n.StartServices(); err != nil {
		t.Fatal(err)
	}
	if err := n.StopService("cam1"); err != nil {
		t.Fatal(err)
	}
	if _, err := n.AddService(&testService{name: "cam3", manifest: Manifest{Devices: []string{"/dev/video0"}}}); err != nil {
		t.Errorf("device not released: %v", err)
	}
}

func TestServiceInitFailure(t *testing.T) {
	bus := transport.NewBus()
	n := newBusNode(t, bus, "solo")
	boom := errors.New("missing dependency")
	rt, err := n.AddService(&testService{name: "bad", initErr: boom})
	if err != nil {
		t.Fatal(err)
	}
	if err := n.StartServices(); !errors.Is(err, boom) {
		t.Errorf("StartServices: %v", err)
	}
	if rt.State() != ServiceFailed {
		t.Errorf("state = %v", rt.State())
	}
	if !errors.Is(rt.Err(), boom) {
		t.Errorf("Err = %v", rt.Err())
	}
}

func TestDependencyCheckThroughContext(t *testing.T) {
	bus := transport.NewBus()
	provider := newBusNode(t, bus, "provider")
	consumer := newBusNode(t, bus, "consumer")
	syncNodes(t, provider, consumer)

	if err := provider.RPC().Register("camera.prepare", "camera", nil, nil, qos.CallQoS{},
		func(any) (any, error) { return nil, nil }); err != nil {
		t.Fatal(err)
	}
	provider.AnnounceNow()
	waitUntil(t, 2*time.Second, "provider record", func() bool {
		return consumer.Directory().ProviderCount(naming.KindFunction, "camera.prepare") == 1
	})

	// E12: service with satisfied deps starts; unsatisfied fails Init.
	okSvc := &testService{name: "mc-ok", onInit: func(ctx *Context) error {
		return ctx.RequireFunctions("camera.prepare")
	}}
	if _, err := consumer.AddService(okSvc); err != nil {
		t.Fatal(err)
	}
	if err := consumer.StartServices(); err != nil {
		t.Fatalf("satisfied dependency rejected: %v", err)
	}

	badSvc := &testService{name: "mc-bad", onInit: func(ctx *Context) error {
		return ctx.RequireFunctions("camera.prepare", "ghost.fn")
	}}
	if _, err := consumer.AddService(badSvc); err != nil {
		t.Fatal(err)
	}
	if err := consumer.StartServices(); err == nil {
		t.Fatal("unsatisfied dependency must fail startup")
	}
}

func TestNodeCloseIdempotent(t *testing.T) {
	bus := transport.NewBus()
	ep, err := bus.Endpoint("x")
	if err != nil {
		t.Fatal(err)
	}
	n, err := NewNode(WithDatagram(ep), WithAnnouncePeriod(20*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	if err := n.Close(); err != nil {
		t.Fatal(err)
	}
	if err := n.Close(); err != nil {
		t.Error("Close must be idempotent")
	}
}

func TestByeTriggersPeerCleanup(t *testing.T) {
	bus := transport.NewBus()
	a := newBusNode(t, bus, "a")
	b := newBusNode(t, bus, "b")
	syncNodes(t, a, b)

	var failed atomic.Value
	a.OnPeerFailed(func(node transport.NodeID) { failed.Store(node) })

	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	waitUntil(t, 2*time.Second, "bye cleanup", func() bool {
		v := failed.Load()
		return v != nil && v.(transport.NodeID) == "b"
	})
}

func TestPEPtPluggability(t *testing.T) {
	// F4: swap encoding and scheduler; everything still works.
	bus := transport.NewBus()
	pub := newBusNode(t, bus, "pub", WithEncoding(debugEnc()), WithScheduler(inlineSched()))
	sub := newBusNode(t, bus, "sub", WithEncoding(debugEnc()), WithScheduler(inlineSched()))
	syncNodes(t, pub, sub)

	p, err := pub.Variables().Offer("v", "svc", gpsType, qos.VariableQoS{})
	if err != nil {
		t.Fatal(err)
	}
	pub.AnnounceNow()
	s, err := sub.Variables().Subscribe("v", gpsType, variables.SubscribeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	waitUntil(t, 2*time.Second, "debug-encoded sample", func() bool {
		if err := p.Publish(gpsValue(40.0)); err != nil {
			t.Fatalf("Publish: %v", err)
		}
		v, _, err := s.Get()
		return err == nil && v.(map[string]any)["lat"] == 40.0
	})
}

// datagramStats exposes transport counters to the tests.
func (n *Node) datagramStats() transport.Stats { return n.bearers[0].tr.Stats() }

// debugEnc and inlineSched are the alternate PEPt plugins used by the
// pluggability test.
func debugEnc() encoding.Encoding      { return encoding.Debug{} }
func inlineSched() scheduler.Scheduler { return scheduler.NewInline() }

func TestEventUnsubscribeStopsDelivery(t *testing.T) {
	bus := transport.NewBus()
	pub := newBusNode(t, bus, "pub")
	sub := newBusNode(t, bus, "sub")
	syncNodes(t, pub, sub)

	p, err := pub.Events().Offer("topic", "svc", nil, qos.EventQoS{})
	if err != nil {
		t.Fatal(err)
	}
	pub.AnnounceNow()
	waitUntil(t, 2*time.Second, "event record", func() bool {
		return sub.Directory().ProviderCount(naming.KindEvent, "topic") == 1
	})
	var count atomic.Int64
	es, err := sub.Events().Subscribe("topic", nil, qos.EventQoS{},
		func(any, transport.NodeID) { count.Add(1) })
	if err != nil {
		t.Fatal(err)
	}
	waitUntil(t, 2*time.Second, "subscriber", func() bool { return len(p.Subscribers()) == 1 })

	ctx := context.Background()
	if err := p.Publish(ctx, nil); err != nil {
		t.Fatal(err)
	}
	waitUntil(t, 2*time.Second, "first delivery", func() bool { return count.Load() == 1 })

	es.Close()
	waitUntil(t, 2*time.Second, "unsubscribe", func() bool { return len(p.Subscribers()) == 0 })
	if err := p.Publish(ctx, nil); err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond)
	if count.Load() != 1 {
		t.Errorf("event delivered after unsubscribe: %d", count.Load())
	}
}

func TestFileRevisionWatch(t *testing.T) {
	bus := transport.NewBus()
	pub := newBusNode(t, bus, "pub")
	sub := newBusNode(t, bus, "sub")
	syncNodes(t, pub, sub)

	offer, err := pub.Files().Offer("fw", "svc", []byte("rev1-data"), qos.TransferQoS{})
	if err != nil {
		t.Fatal(err)
	}
	pub.AnnounceNow()
	waitUntil(t, 2*time.Second, "file record", func() bool {
		return sub.Directory().ProviderCount(naming.KindFile, "fw") == 1
	})

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	type delivery struct {
		rev  uint64
		data string
	}
	got := make(chan delivery, 4)
	go func() {
		_ = sub.Files().Watch(ctx, "fw", filetransfer.FetchOptions{}, func(data []byte, rev uint64) {
			got <- delivery{rev: rev, data: string(data)}
		})
	}()

	select {
	case d := <-got:
		if d.rev != 1 || d.data != "rev1-data" {
			t.Fatalf("first delivery %+v", d)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("first delivery timeout")
	}

	if _, err := offer.Update([]byte("rev2-data")); err != nil {
		t.Fatal(err)
	}
	select {
	case d := <-got:
		if d.rev != 2 || d.data != "rev2-data" {
			t.Fatalf("second delivery %+v", d)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("revision change not delivered")
	}
}
