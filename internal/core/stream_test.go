package core

import (
	"context"
	"sync/atomic"
	"testing"
	"time"

	"uavmw/internal/naming"
	"uavmw/internal/presentation"
	"uavmw/internal/qos"
	"uavmw/internal/scheduler"
	"uavmw/internal/transport"
	"uavmw/internal/variables"
)

// newStreamNode builds a container with a bus datagram transport plus a
// real TCP stream transport, the paper's dual mapping (§4.2: events over
// "TCP or over UDP").
func newStreamNode(t *testing.T, bus *transport.Bus, id transport.NodeID) (*Node, *transport.TCP) {
	t.Helper()
	ep, err := bus.Endpoint(id)
	if err != nil {
		t.Fatal(err)
	}
	tcp, err := transport.NewTCP(id, "127.0.0.1:0", nil)
	if err != nil {
		t.Skipf("tcp unavailable: %v", err)
	}
	n, err := NewNode(
		WithDatagram(ep),
		WithStream(tcp),
		WithAnnouncePeriod(25*time.Millisecond),
	)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = n.Close() })
	return n, tcp
}

func TestEventsOverTCPStream(t *testing.T) {
	bus := transport.NewBus()
	pub, pubTCP := newStreamNode(t, bus, "pub")
	sub, subTCP := newStreamNode(t, bus, "sub")
	pubTCP.AddPeer("sub", subTCP.LocalAddr())
	subTCP.AddPeer("pub", pubTCP.LocalAddr())
	syncNodes(t, pub, sub)

	p, err := pub.Events().Offer("stream.topic", "svc", presentation.String_(),
		qos.EventQoS{Reliability: qos.ReliableStream})
	if err != nil {
		t.Fatal(err)
	}
	pub.AnnounceNow()
	waitUntil(t, 2*time.Second, "event record", func() bool {
		return sub.Directory().ProviderCount(naming.KindEvent, "stream.topic") == 1
	})
	var got atomic.Value
	if _, err := sub.Events().Subscribe("stream.topic", presentation.String_(),
		qos.EventQoS{Reliability: qos.ReliableStream},
		func(v any, from transport.NodeID) { got.Store(v) }); err != nil {
		t.Fatal(err)
	}
	waitUntil(t, 2*time.Second, "subscriber", func() bool { return len(p.Subscribers()) == 1 })

	before := pubTCP.Stats().PacketsSent
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := p.Publish(ctx, "over-tcp"); err != nil {
		t.Fatalf("Publish: %v", err)
	}
	waitUntil(t, 5*time.Second, "delivery over stream", func() bool {
		v := got.Load()
		return v != nil && v.(string) == "over-tcp"
	})
	// The event must have used the stream transport, not the datagram ARQ.
	if after := pubTCP.Stats().PacketsSent; after == before {
		t.Error("event did not travel over the TCP stream")
	}
}

func TestRPCOverTCPStream(t *testing.T) {
	bus := transport.NewBus()
	server, srvTCP := newStreamNode(t, bus, "server")
	client, cliTCP := newStreamNode(t, bus, "client")
	srvTCP.AddPeer("client", cliTCP.LocalAddr())
	cliTCP.AddPeer("server", srvTCP.LocalAddr())
	syncNodes(t, server, client)

	retT := presentation.Int64()
	if err := server.RPC().Register("stream.echo", "svc", presentation.Int64(), retT,
		qos.CallQoS{}, func(args any) (any, error) { return args, nil }); err != nil {
		t.Fatal(err)
	}
	server.AnnounceNow()
	waitUntil(t, 2*time.Second, "function record", func() bool {
		return client.Directory().ProviderCount(naming.KindFunction, "stream.echo") == 1
	})

	before := cliTCP.Stats().PacketsSent
	got, err := client.RPC().Call(context.Background(), "stream.echo", int64(77),
		presentation.Int64(), retT, qos.CallQoS{Reliability: qos.ReliableStream})
	if err != nil {
		t.Fatalf("call over stream: %v", err)
	}
	if got != int64(77) {
		t.Errorf("got %v", got)
	}
	if after := cliTCP.Stats().PacketsSent; after == before {
		t.Error("call did not travel over the TCP stream")
	}
}

func TestStreamFallsBackToARQWithoutStreamTransport(t *testing.T) {
	// A node without a stream transport must still honor ReliableStream
	// requests by falling back to the ARQ path.
	bus := transport.NewBus()
	a := newBusNode(t, bus, "a")
	b := newBusNode(t, bus, "b")
	syncNodes(t, a, b)

	p, err := a.Events().Offer("fallback.topic", "svc", nil,
		qos.EventQoS{Reliability: qos.ReliableStream})
	if err != nil {
		t.Fatal(err)
	}
	a.AnnounceNow()
	waitUntil(t, 2*time.Second, "record", func() bool {
		return b.Directory().ProviderCount(naming.KindEvent, "fallback.topic") == 1
	})
	var count atomic.Int64
	if _, err := b.Events().Subscribe("fallback.topic", nil,
		qos.EventQoS{Reliability: qos.ReliableStream},
		func(any, transport.NodeID) { count.Add(1) }); err != nil {
		t.Fatal(err)
	}
	waitUntil(t, 2*time.Second, "subscriber", func() bool { return len(p.Subscribers()) == 1 })
	if err := p.Publish(context.Background(), nil); err != nil {
		t.Fatalf("fallback publish: %v", err)
	}
	waitUntil(t, 2*time.Second, "fallback delivery", func() bool { return count.Load() == 1 })
}

func TestEDFSchedulerPlugsIntoNode(t *testing.T) {
	// The paper's future-work scheduler drops into the container through
	// the same option as the default pool (F4 + §7).
	bus := transport.NewBus()
	edf := scheduler.NewEDF(scheduler.WithEDFWorkers(2))
	n := newBusNode(t, bus, "edf-node", WithScheduler(edf))
	defer edf.Stop()

	p, err := n.Variables().Offer("v", "svc", presentation.Float64(), qos.VariableQoS{})
	if err != nil {
		t.Fatal(err)
	}
	var got atomic.Value
	s, err := n.Variables().Subscribe("v", presentation.Float64(), subscriptionWithSample(&got))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := p.Publish(2.5); err != nil {
		t.Fatal(err)
	}
	waitUntil(t, 2*time.Second, "EDF-scheduled delivery", func() bool {
		v := got.Load()
		return v != nil && v.(float64) == 2.5
	})
	if edf.Executed() == 0 {
		t.Error("EDF scheduler executed no handler jobs")
	}
}

// subscriptionWithSample builds options that store each sample.
func subscriptionWithSample(dst *atomic.Value) variables.SubscribeOptions {
	return variables.SubscribeOptions{
		OnSample: func(v any, _ time.Time) { dst.Store(v) },
	}
}
