// Package core implements the paper's primary contribution: the service
// container (§3). One container runs per network node; it executes and
// manages services, handles name management through a proxy cache, owns all
// network access on the node, and provides the four communication
// primitives (§4) to its services through the Context API.
package core

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"uavmw/internal/encoding"
	"uavmw/internal/events"
	"uavmw/internal/fabric"
	"uavmw/internal/filetransfer"
	"uavmw/internal/naming"
	"uavmw/internal/presentation"
	"uavmw/internal/protocol"
	"uavmw/internal/qos"
	"uavmw/internal/rpc"
	"uavmw/internal/scheduler"
	"uavmw/internal/transport"
	"uavmw/internal/variables"
)

// Errors.
var (
	// ErrNodeClosed reports use of a closed node.
	ErrNodeClosed = errors.New("node closed")
	// ErrNoDatagram reports construction without a datagram transport.
	ErrNoDatagram = errors.New("datagram transport required")
)

// Node is one service container. Construct with NewNode, then register
// services (AddService) or use the primitive APIs directly via Context.
type Node struct {
	id       transport.NodeID
	datagram transport.Transport
	stream   transport.Transport // optional
	enc      encoding.Encoding
	sched    scheduler.Scheduler
	ownSched bool
	dir      *naming.Directory
	live     *naming.Liveness
	types    *presentation.Registry
	arq      *protocol.ARQ
	dedup    *protocol.Dedup
	reasm    *protocol.Reassembler
	seq      atomic.Uint64
	epoch    uint64
	mtu      int

	vars   *variables.Engine
	events *events.Engine
	rpc    *rpc.Engine
	files  *filetransfer.Engine

	announcePeriod  time.Duration
	failureDeadline time.Duration
	loadProbe       func() float64

	budget ResourceBudget

	mu           sync.Mutex
	services     map[string]*ServiceRuntime
	startOrder   []string
	devices      map[string]string // device -> owning service
	peerFailedCB []func(transport.NodeID)
	closed       bool

	stop chan struct{}
	wg   sync.WaitGroup
}

// nodeConfig collects option state before construction.
type nodeConfig struct {
	datagram        transport.Transport
	stream          transport.Transport
	enc             encoding.Encoding
	sched           scheduler.Scheduler
	announcePeriod  time.Duration
	failureDeadline time.Duration
	directoryTTL    time.Duration
	arqOpts         []protocol.ARQOption
	fileOpts        []filetransfer.Option
	loadProbe       func() float64
	mtu             int
	budget          ResourceBudget
	rpcInflight     int
}

// NodeOption configures a Node.
type NodeOption func(*nodeConfig)

// WithDatagram sets the required datagram transport (UDP, bus, netsim).
func WithDatagram(t transport.Transport) NodeOption {
	return func(c *nodeConfig) { c.datagram = t }
}

// WithStream sets the optional reliable stream transport (TCP). Without
// one, ReliableStream sends fall back to the ARQ path.
func WithStream(t transport.Transport) NodeOption {
	return func(c *nodeConfig) { c.stream = t }
}

// WithEncoding overrides the default binary payload encoding.
func WithEncoding(e encoding.Encoding) NodeOption {
	return func(c *nodeConfig) { c.enc = e }
}

// WithScheduler plugs a custom scheduler; the node stops it on Close only
// if it created the default one.
func WithScheduler(s scheduler.Scheduler) NodeOption {
	return func(c *nodeConfig) { c.sched = s }
}

// WithAnnouncePeriod sets the discovery announce/heartbeat period.
func WithAnnouncePeriod(d time.Duration) NodeOption {
	return func(c *nodeConfig) {
		if d > 0 {
			c.announcePeriod = d
		}
	}
}

// WithFailureDeadline sets how long a silent peer survives before failover.
func WithFailureDeadline(d time.Duration) NodeOption {
	return func(c *nodeConfig) {
		if d > 0 {
			c.failureDeadline = d
		}
	}
}

// WithDirectoryTTL sets the name-cache entry lifetime.
func WithDirectoryTTL(d time.Duration) NodeOption {
	return func(c *nodeConfig) {
		if d > 0 {
			c.directoryTTL = d
		}
	}
}

// WithARQ forwards tuning options to the reliable-datagram engine.
func WithARQ(opts ...protocol.ARQOption) NodeOption {
	return func(c *nodeConfig) { c.arqOpts = append(c.arqOpts, opts...) }
}

// WithFileTransfer forwards tuning options to the file engine.
func WithFileTransfer(opts ...filetransfer.Option) NodeOption {
	return func(c *nodeConfig) { c.fileOpts = append(c.fileOpts, opts...) }
}

// WithLoadProbe sets the function whose value is announced as node load.
func WithLoadProbe(f func() float64) NodeOption {
	return func(c *nodeConfig) { c.loadProbe = f }
}

// WithMTU overrides the fragmentation threshold.
func WithMTU(n int) NodeOption {
	return func(c *nodeConfig) {
		if n > 0 {
			c.mtu = n
		}
	}
}

// WithResourceBudget sets the node's admission-control budget (§3 resource
// management).
func WithResourceBudget(b ResourceBudget) NodeOption {
	return func(c *nodeConfig) { c.budget = b }
}

// WithRPCInflightLimit caps concurrently executing remote-call handlers on
// this node; excess MTCall requests are answered MTBusy so callers fail
// over to redundant providers instead of queueing (§4.3 admission
// control). Zero (the default) means unlimited.
func WithRPCInflightLimit(n int) NodeOption {
	return func(c *nodeConfig) { c.rpcInflight = n }
}

// DefaultAnnouncePeriod balances discovery latency against chatter.
const DefaultAnnouncePeriod = 200 * time.Millisecond

// NewNode builds and starts a container on the given transports.
func NewNode(opts ...NodeOption) (*Node, error) {
	cfg := nodeConfig{
		enc:            encoding.Binary{},
		announcePeriod: DefaultAnnouncePeriod,
		mtu:            protocol.DefaultMTU,
	}
	for _, opt := range opts {
		opt(&cfg)
	}
	if cfg.datagram == nil {
		return nil, fmt.Errorf("core: %w", ErrNoDatagram)
	}
	if cfg.failureDeadline <= 0 {
		cfg.failureDeadline = 5 * cfg.announcePeriod
	}
	if cfg.directoryTTL <= 0 {
		cfg.directoryTTL = 6 * cfg.announcePeriod
	}
	n := &Node{
		id:              cfg.datagram.Node(),
		datagram:        cfg.datagram,
		stream:          cfg.stream,
		enc:             cfg.enc,
		sched:           cfg.sched,
		dir:             naming.NewDirectory(cfg.directoryTTL),
		live:            naming.NewLiveness(cfg.failureDeadline),
		types:           presentation.NewRegistry(),
		dedup:           protocol.NewDedup(0),
		reasm:           protocol.NewReassembler(0),
		epoch:           uint64(time.Now().UnixNano()),
		mtu:             cfg.mtu,
		announcePeriod:  cfg.announcePeriod,
		failureDeadline: cfg.failureDeadline,
		loadProbe:       cfg.loadProbe,
		services:        make(map[string]*ServiceRuntime),
		devices:         make(map[string]string),
		stop:            make(chan struct{}),
	}
	if n.sched == nil {
		n.sched = scheduler.NewPool()
		n.ownSched = true
	}
	n.budget = cfg.budget
	n.arq = protocol.NewARQ(func(to transport.NodeID, frame []byte) error {
		return n.datagram.Send(to, frame)
	}, cfg.arqOpts...)

	n.vars = variables.New(n)
	n.events = events.New(n)
	n.rpc = rpc.New(n)
	n.rpc.SetInflightLimit(cfg.rpcInflight)
	n.files = filetransfer.New(n, cfg.fileOpts...)

	if n.loadProbe == nil {
		n.loadProbe = n.defaultLoad
	}

	n.datagram.SetHandler(n.handlePacket)
	if n.stream != nil {
		n.stream.SetHandler(n.handlePacket)
	}
	if err := n.datagram.Join(fabric.DiscoveryGroup); err != nil {
		return nil, fmt.Errorf("core: join discovery: %w", err)
	}

	n.wg.Add(1)
	go n.discoveryLoop()
	return n, nil
}

// defaultLoad derives load from the scheduler backlog when the default pool
// is in use.
func (n *Node) defaultLoad() float64 {
	if pool, ok := n.sched.(*scheduler.Pool); ok {
		return float64(pool.Backlog()) / float64(scheduler.DefaultQueueCap)
	}
	return 0
}

// ID returns the node identity.
func (n *Node) ID() transport.NodeID { return n.id }

// Types returns the node's type registry.
func (n *Node) Types() *presentation.Registry { return n.types }

// Directory implements fabric.Fabric.
func (n *Node) Directory() *naming.Directory { return n.dir }

// Self implements fabric.Fabric.
func (n *Node) Self() transport.NodeID { return n.id }

// Encoding implements fabric.Fabric.
func (n *Node) Encoding() encoding.Encoding { return n.enc }

// Schedule implements fabric.Fabric.
func (n *Node) Schedule(p qos.Priority, job func()) error {
	return n.sched.Submit(p, job)
}

// NextSeq implements fabric.Fabric.
func (n *Node) NextSeq() uint64 { return n.seq.Add(1) }

// Join implements fabric.Fabric.
func (n *Node) Join(group string) error { return n.datagram.Join(group) }

// Leave implements fabric.Fabric.
func (n *Node) Leave(group string) error { return n.datagram.Leave(group) }

// SendBestEffort implements fabric.Fabric.
func (n *Node) SendBestEffort(to transport.NodeID, f *protocol.Frame) error {
	if f.Seq == 0 {
		f.Seq = n.NextSeq()
	}
	raw, err := protocol.EncodeFrame(f)
	if err != nil {
		return err
	}
	if to == n.id {
		n.handleFrameBytes(n.id, raw)
		return nil
	}
	parts, err := protocol.Fragment(raw, f.Seq, n.mtu)
	if err != nil {
		return err
	}
	for _, part := range parts {
		if err := n.datagram.Send(to, part); err != nil {
			return err
		}
	}
	return nil
}

// SendGroup implements fabric.Fabric.
func (n *Node) SendGroup(group string, f *protocol.Frame) error {
	if f.Seq == 0 {
		f.Seq = n.NextSeq()
	}
	raw, err := protocol.EncodeFrame(f)
	if err != nil {
		return err
	}
	parts, err := protocol.Fragment(raw, f.Seq, n.mtu)
	if err != nil {
		return err
	}
	for _, part := range parts {
		if err := n.datagram.SendGroup(group, part); err != nil {
			return err
		}
	}
	return nil
}

// SendReliable implements fabric.Fabric.
func (n *Node) SendReliable(to transport.NodeID, f *protocol.Frame, rel qos.Reliability, done func(error)) {
	finish := func(err error) {
		if done != nil {
			done(err)
		}
	}
	if f.Seq == 0 {
		f.Seq = n.NextSeq()
	}
	// Local loopback: deliver straight through the dispatcher.
	if to == n.id {
		raw, err := protocol.EncodeFrame(f)
		if err != nil {
			finish(err)
			return
		}
		n.handleFrameBytes(n.id, raw)
		finish(nil)
		return
	}
	if rel == qos.ReliableStream && n.stream != nil {
		raw, err := protocol.EncodeFrame(f)
		if err != nil {
			finish(err)
			return
		}
		finish(n.stream.Send(to, raw))
		return
	}
	// ARQ over the datagram transport.
	f.Flags |= protocol.FlagAckRequired
	raw, err := protocol.EncodeFrame(f)
	if err != nil {
		finish(err)
		return
	}
	parts, err := protocol.Fragment(raw, f.Seq, n.mtu)
	if err != nil {
		finish(err)
		return
	}
	if len(parts) == 1 {
		if err := n.arq.Send(to, f.Seq, parts[0], done); err != nil {
			finish(err)
		}
		return
	}
	// Multi-fragment reliable send: each fragment is acknowledged
	// independently; the message completes when all fragments do.
	var (
		remaining atomic.Int64
		failed    atomic.Bool
	)
	remaining.Store(int64(len(parts)))
	for _, part := range parts {
		fragFrame, derr := protocol.DecodeFrame(part)
		if derr != nil {
			finish(derr)
			return
		}
		fragSeq := n.NextSeq()
		// Re-encode with a unique per-fragment seq and ack flag.
		fragFrame.Seq = fragSeq
		fragFrame.Flags |= protocol.FlagAckRequired
		fragRaw, eerr := protocol.EncodeFrame(fragFrame)
		if eerr != nil {
			finish(eerr)
			return
		}
		if err := n.arq.Send(to, fragSeq, fragRaw, func(err error) {
			if err != nil {
				if !failed.Swap(true) {
					finish(err)
				}
				return
			}
			if remaining.Add(-1) == 0 && !failed.Load() {
				finish(nil)
			}
		}); err != nil {
			if !failed.Swap(true) {
				finish(err)
			}
			return
		}
	}
}

var _ fabric.Fabric = (*Node)(nil)

// handlePacket is the transport receive entry point.
func (n *Node) handlePacket(pkt transport.Packet) {
	n.handleFrameBytes(pkt.From, pkt.Payload)
}

// handleFrameBytes decodes and routes one frame.
func (n *Node) handleFrameBytes(from transport.NodeID, raw []byte) {
	f, err := protocol.DecodeFrame(raw)
	if err != nil {
		return
	}
	n.handleFrame(from, f)
}

func (n *Node) handleFrame(from transport.NodeID, f *protocol.Frame) {
	switch f.Type {
	case protocol.MTAck:
		n.arq.Ack(from, f.Seq)
		return
	case protocol.MTFragment:
		// Ack-required fragments are acknowledged and deduped
		// individually before reassembly.
		if from != n.id && f.Flags&protocol.FlagAckRequired != 0 {
			n.sendAck(from, f.Seq)
			if n.dedup.Seen(from, f.Seq) {
				return
			}
		}
		complete, err := n.reasm.Offer(from, f)
		if err != nil || complete == nil {
			return
		}
		inner, err := protocol.DecodeFrame(complete)
		if err != nil {
			return
		}
		// Dedup the logical message too: a fully retransmitted
		// fragment set must not deliver twice.
		if from != n.id && n.dedup.Seen(from, inner.Seq) {
			return
		}
		n.route(from, inner)
		return
	default:
	}
	if from != n.id && f.Flags&protocol.FlagAckRequired != 0 {
		n.sendAck(from, f.Seq)
		if n.dedup.Seen(from, f.Seq) {
			return
		}
	}
	// Frames routed asynchronously must own their payload: transports may
	// reuse the receive buffer.
	f.Payload = append([]byte(nil), f.Payload...)
	n.route(from, f)
}

func (n *Node) sendAck(to transport.NodeID, seq uint64) {
	ack := &protocol.Frame{Type: protocol.MTAck, Seq: seq, Priority: qos.PriorityCritical}
	raw, err := protocol.EncodeFrame(ack)
	if err != nil {
		return
	}
	_ = n.datagram.Send(to, raw)
}

// route dispatches a frame to its engine.
func (n *Node) route(from transport.NodeID, f *protocol.Frame) {
	switch f.Type {
	case protocol.MTAnnounce:
		n.handleAnnounce(from, f)
	case protocol.MTBye:
		n.handleBye(from)
	case protocol.MTSample:
		n.vars.HandleSample(from, f)
	case protocol.MTSnapshotReq:
		n.vars.HandleSnapshotReq(from, f)
	case protocol.MTSnapshotRep:
		n.vars.HandleSnapshotRep(from, f)
	case protocol.MTSubscribe:
		n.events.HandleSubscribe(from, f)
	case protocol.MTUnsubscribe:
		n.events.HandleUnsubscribe(from, f)
	case protocol.MTEvent:
		n.events.HandleEvent(from, f)
	case protocol.MTEventNack:
		n.events.HandleEventNack(from, f)
	case protocol.MTCall:
		n.rpc.HandleCall(from, f)
	case protocol.MTReturn:
		n.rpc.HandleReturn(from, f)
	case protocol.MTError:
		n.rpc.HandleError(from, f)
	case protocol.MTBusy:
		n.rpc.HandleBusy(from, f)
	case protocol.MTFileAnnounce:
		n.files.HandleAnnounce(from, f)
	case protocol.MTFileSubscribe:
		n.files.HandleSubscribe(from, f)
	case protocol.MTFileChunk:
		n.files.HandleChunk(from, f)
	case protocol.MTFileQuery:
		n.files.HandleQuery(from, f)
	case protocol.MTFileAck:
		n.files.HandleAck(from, f)
	case protocol.MTFileNack:
		n.files.HandleNack(from, f)
	default:
		// Heartbeats are implicit in announcements; unknown types drop.
	}
}

// --- discovery ---

// discoveryLoop announces this node and sweeps dead peers.
func (n *Node) discoveryLoop() {
	defer n.wg.Done()
	ticker := time.NewTicker(n.announcePeriod)
	defer ticker.Stop()
	n.announceNow()
	for {
		select {
		case <-n.stop:
			return
		case <-ticker.C:
			n.announceNow()
			n.sweep()
			n.events.Refresh()
		}
	}
}

// buildAnnouncement assembles this node's full offer.
func (n *Node) buildAnnouncement() *naming.Announcement {
	recs := n.vars.Records()
	recs = append(recs, n.events.Records()...)
	recs = append(recs, n.rpc.Records()...)
	recs = append(recs, n.files.Records()...)
	n.mu.Lock()
	for name, srt := range n.services {
		if srt.State() == ServiceRunning || srt.State() == ServiceInitialized {
			recs = append(recs, naming.Record{
				Kind: naming.KindService, Name: name, Service: name, Node: n.id,
			})
		}
	}
	n.mu.Unlock()
	return &naming.Announcement{
		Node:    n.id,
		Epoch:   n.epoch,
		Load:    n.loadProbe(),
		Records: recs,
	}
}

// announceNow broadcasts the node's offer and applies it locally so local
// lookups resolve without a network round trip.
func (n *Node) announceNow() {
	ann := n.buildAnnouncement()
	n.dir.Apply(ann, time.Now())
	payload, err := naming.EncodeAnnouncement(ann)
	if err != nil {
		return
	}
	frame := &protocol.Frame{
		Type:     protocol.MTAnnounce,
		Priority: qos.PriorityNormal,
		Seq:      n.NextSeq(),
		Payload:  payload,
	}
	_ = n.SendGroup(fabric.DiscoveryGroup, frame)
}

func (n *Node) handleAnnounce(from transport.NodeID, f *protocol.Frame) {
	ann, err := naming.DecodeAnnouncement(f.Payload)
	if err != nil || ann.Node != from {
		return
	}
	if from == n.id {
		return
	}
	now := time.Now()
	n.live.Touch(from, now)
	n.dir.Apply(ann, now)
}

func (n *Node) handleBye(from transport.NodeID) {
	if from == n.id {
		return
	}
	n.live.Forget(from)
	n.peerGone(from)
}

// sweep detects failed peers and expired directory entries.
func (n *Node) sweep() {
	now := time.Now()
	for _, node := range n.live.Sweep(now) {
		n.peerGone(node)
	}
	for _, node := range n.dir.Expire(now) {
		// TTL expiry of every record is failure-equivalent.
		n.live.Forget(node)
		n.peerGone(node)
	}
}

// peerGone clears all state tied to a failed or departed node and notifies
// the engines and registered callbacks (§3 cache clearing + §4.3 failover).
func (n *Node) peerGone(node transport.NodeID) {
	n.dir.RemoveNode(node)
	n.dedup.Forget(node)
	n.events.PeerGone(node)
	n.files.PeerGone(node)
	n.mu.Lock()
	cbs := make([]func(transport.NodeID), len(n.peerFailedCB))
	copy(cbs, n.peerFailedCB)
	n.mu.Unlock()
	for _, cb := range cbs {
		cb(node)
	}
}

// OnPeerFailed registers a callback invoked when a peer node is declared
// failed or says goodbye.
func (n *Node) OnPeerFailed(cb func(transport.NodeID)) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.peerFailedCB = append(n.peerFailedCB, cb)
}

// AnnounceNow forces an immediate announcement (used by registration paths
// and tests to shorten discovery latency).
func (n *Node) AnnounceNow() { n.announceNow() }

// Peers lists peers currently believed alive.
func (n *Node) Peers() []transport.NodeID { return n.live.Peers() }

// Close sends a goodbye, stops loops, services and the scheduler.
func (n *Node) Close() error {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return nil
	}
	n.closed = true
	n.mu.Unlock()

	// Stop services in reverse start order.
	n.stopAllServices()

	// Goodbye to the fleet.
	bye := &protocol.Frame{Type: protocol.MTBye, Priority: qos.PriorityHigh, Seq: n.NextSeq()}
	_ = n.SendGroup(fabric.DiscoveryGroup, bye)

	close(n.stop)
	n.wg.Wait()
	n.arq.Close()
	if n.ownSched {
		n.sched.Stop()
	}
	err := n.datagram.Close()
	if n.stream != nil {
		if serr := n.stream.Close(); err == nil {
			err = serr
		}
	}
	return err
}

// Engines expose the primitive runtimes to the Context layer.

// Variables returns the §4.1 engine.
func (n *Node) Variables() *variables.Engine { return n.vars }

// Events returns the §4.2 engine.
func (n *Node) Events() *events.Engine { return n.events }

// RPC returns the §4.3 engine.
func (n *Node) RPC() *rpc.Engine { return n.rpc }

// Files returns the §4.4 engine.
func (n *Node) Files() *filetransfer.Engine { return n.files }
