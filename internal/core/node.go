// Package core implements the paper's primary contribution: the service
// container (§3). One container runs per network node; it executes and
// manages services, handles name management through a proxy cache, owns all
// network access on the node, and provides the four communication
// primitives (§4) to its services through the Context API.
package core

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"uavmw/internal/bufpool"
	"uavmw/internal/clock"
	"uavmw/internal/egress"
	"uavmw/internal/encoding"
	"uavmw/internal/events"
	"uavmw/internal/fabric"
	"uavmw/internal/filetransfer"
	"uavmw/internal/ingress"
	"uavmw/internal/link"
	"uavmw/internal/metrics"
	"uavmw/internal/naming"
	"uavmw/internal/presentation"
	"uavmw/internal/protocol"
	"uavmw/internal/qos"
	"uavmw/internal/rpc"
	"uavmw/internal/scheduler"
	"uavmw/internal/transport"
	"uavmw/internal/uerr"
	"uavmw/internal/variables"
)

// Errors.
var (
	// ErrNodeClosed reports use of a closed node.
	ErrNodeClosed = errors.New("node closed")
	// ErrNoDatagram reports construction without a datagram transport.
	ErrNoDatagram = errors.New("datagram transport required")
	// ErrBadBearer reports an invalid bearer set: duplicate names, an
	// empty name, or transports that disagree on the node identity.
	ErrBadBearer = errors.New("invalid bearer configuration")
)

// DefaultBearer names the bearer WithDatagram registers — single-datalink
// nodes never see bearer names unless they ask.
const DefaultBearer = egress.DefaultBearer

// Wire-path error codes (§ observability). Every failure the container
// used to drop silently or fold into an anonymous counter constructs
// through one of these, so the registry's "discovery.errors" /
// "core.errors" families count it by category the moment it happens.
var (
	codeAnnounceEncode = uerr.Register("discovery.announce_encode", uerr.CatEncode)
	codeAnnounceSend   = uerr.Register("discovery.announce_send", uerr.CatSend)
	codeDeltaEncode    = uerr.Register("discovery.delta_encode", uerr.CatEncode)
	codeDeltaSend      = uerr.Register("discovery.delta_send", uerr.CatSend)
	codeHeartbeatEnc   = uerr.Register("discovery.heartbeat_encode", uerr.CatEncode)
	codeHeartbeatSend  = uerr.Register("discovery.heartbeat_send", uerr.CatSend)
	codeSyncReqSend    = uerr.Register("discovery.sync_request_send", uerr.CatSend)
	codeSyncRepEncode  = uerr.Register("discovery.sync_reply_encode", uerr.CatEncode)
	codeSyncRepSend    = uerr.Register("discovery.sync_reply_send", uerr.CatSend)
	codeSyncShed       = uerr.Register("discovery.sync_shed", uerr.CatAdmission)
	codeDiscoMalformed = uerr.Register("discovery.frame_malformed", uerr.CatDecode)
	codeNodeMismatch   = uerr.Register("discovery.node_mismatch", uerr.CatProtocol)
	codeFrameDecode    = uerr.Register("core.frame_decode", uerr.CatDecode)
	codeBatchDecode    = uerr.Register("core.batch_decode", uerr.CatDecode)
	codeBatchNested    = uerr.Register("core.batch_nested", uerr.CatProtocol)
	codeFragReassembly = uerr.Register("core.fragment_reassembly", uerr.CatDecode)
	codeAckEncode      = uerr.Register("core.ack_encode", uerr.CatEncode)
	codeAckSend        = uerr.Register("core.ack_send", uerr.CatSend)
	codeProbeEncode    = uerr.Register("core.probe_encode", uerr.CatEncode)
	codeProbeSend      = uerr.Register("core.probe_send", uerr.CatSend)
	codeByeSend        = uerr.Register("core.bye_send", uerr.CatSend)
)

// bearerRuntime is one datalink the node transmits over: the transport,
// its declared profile, and the link monitor estimating its health.
type bearerRuntime struct {
	name    string
	tr      transport.Transport
	profile qos.BearerProfile
	mon     *link.Monitor
	// wasDown latches the last health state the sweep observed, so a
	// healthy→down transition triggers exactly one egress reroute.
	wasDown atomic.Bool
}

// Node is one service container. Construct with NewNode, then register
// services (AddService) or use the primitive APIs directly via Context.
type Node struct {
	id  transport.NodeID
	clk clock.Clock
	// bearers holds the node's datagram links in registration order;
	// bearers[0] is the default. bearerByName indexes them. classOrder is
	// the policy-derived bearer preference per qos.Priority index.
	bearers      []*bearerRuntime
	bearerByName map[string]*bearerRuntime
	classOrder   [qosNumClasses][]string
	// reach caches which bearers each peer advertises (KindBearer records
	// in its offer), so the per-frame bearer selector never walks the
	// directory.
	reachMu sync.RWMutex
	reach   map[transport.NodeID]map[string]bool

	stream   transport.Transport // optional
	enc      encoding.Encoding
	sched    scheduler.Scheduler
	ownSched bool
	dir      *naming.Directory
	live     *naming.Liveness
	types    *presentation.Registry
	arq      *protocol.ARQ
	egress   *egress.Plane
	// ingress is the sharded receive pipeline between the bearer
	// transports and handleFrame: packets hash by source onto shards
	// (preserving per-source FIFO), shards decode and dispatch in
	// parallel. shards holds the per-shard protocol state (dedup windows,
	// reassembly, pending ack coalescing); local is the equivalent state
	// for the synchronous paths that bypass the pipeline (self loopback,
	// the stream transport).
	ingress *ingress.Pipeline
	shards  []*recvShard
	local   *recvShard
	seq     atomic.Uint64
	epoch   uint64
	mtu     int

	// Incremental discovery plane (§3 at fleet scale): the versioned log
	// of this node's own offer, the reassembly state for unicast full
	// syncs, and per-peer sync-request throttling.
	log         *naming.Log
	announceMu  sync.Mutex    // orders log updates with their broadcasts
	introduced  bool          // a full-state announce has gone out (guarded by announceMu)
	offerDirty  clock.Trigger // coalesces OfferChanged signals
	syncMu      sync.Mutex
	syncAsm     *naming.SyncAssembler
	syncReqAt   map[transport.NodeID]time.Time
	syncServing atomic.Int64 // full-state replies currently in flight
	disco       discoveryCounters

	// metrics is the node's unified registry: every plane's counter
	// families and typed-error families land here, and MetricsSnapshot
	// exports them all (§ observability).
	metrics *metrics.Registry

	vars   *variables.Engine
	events *events.Engine
	rpc    *rpc.Engine
	files  *filetransfer.Engine

	announcePeriod  time.Duration
	failureDeadline time.Duration
	loadProbe       func() float64

	budget ResourceBudget

	mu           sync.Mutex
	services     map[string]*ServiceRuntime
	startOrder   []string
	devices      map[string]string // device -> owning service
	peerFailedCB []func(transport.NodeID)
	closed       bool

	stop chan struct{}
	wg   sync.WaitGroup
}

// qosNumClasses mirrors qos.NumLevels(); sized as a constant for arrays. A
// test pins the two against each other.
const qosNumClasses = 5

// bearerSpec is one WithBearer/WithDatagram registration.
type bearerSpec struct {
	name    string
	tr      transport.Transport
	profile qos.BearerProfile
}

// nodeConfig collects option state before construction.
type nodeConfig struct {
	bearers         []bearerSpec
	policy          qos.LinkPolicy
	stream          transport.Transport
	enc             encoding.Encoding
	sched           scheduler.Scheduler
	announcePeriod  time.Duration
	failureDeadline time.Duration
	directoryTTL    time.Duration
	arqOpts         []protocol.ARQOption
	fileOpts        []filetransfer.Option
	loadProbe       func() float64
	mtu             int
	budget          ResourceBudget
	rpcInflight     int
	egressCfg       egress.Config
	ingressShards   int
	clk             clock.Clock
}

// NodeOption configures a Node.
type NodeOption func(*nodeConfig)

// WithDatagram sets a datagram transport (UDP, bus, netsim) as the node's
// default bearer — the single-datalink configuration. It is shorthand for
// WithBearer(DefaultBearer, t, qos.BearerProfile{}).
func WithDatagram(t transport.Transport) NodeOption {
	return WithBearer(DefaultBearer, t, qos.BearerProfile{})
}

// WithBearer registers one named datalink (bearer) the node transmits
// over. A node may carry several dissimilar bearers at once — short-range
// high-bandwidth WiFi, a long-range radio modem, satcom — each wrapped in
// a link monitor and given its own egress lanes and bulk pacer; the link
// policy (WithLinkPolicy, or the profile-derived default) routes each
// traffic class onto the preferred healthy bearer and fails it over within
// a failure-deadline when that bearer blacks out. Bearer names are fleet-
// wide vocabulary: discovery advertises them, and peers match them against
// their own bearer set, so give the same physical network the same name on
// every node. The first bearer registered is the default. All bearer
// transports must agree on the node identity.
func WithBearer(name string, t transport.Transport, profile qos.BearerProfile) NodeOption {
	return func(c *nodeConfig) {
		c.bearers = append(c.bearers, bearerSpec{name: name, tr: t, profile: profile})
	}
}

// WithLinkPolicy sets the class→bearer affinity and failover order for
// multi-bearer nodes. Without it, the default policy derived from bearer
// profiles applies: bulk rides the highest-rate healthy bearer, critical
// pins to the most robust one, interactive classes chase latency.
func WithLinkPolicy(p qos.LinkPolicy) NodeOption {
	return func(c *nodeConfig) { c.policy = p }
}

// WithStream sets the optional reliable stream transport (TCP). Without
// one, ReliableStream sends fall back to the ARQ path.
func WithStream(t transport.Transport) NodeOption {
	return func(c *nodeConfig) { c.stream = t }
}

// WithEncoding overrides the default binary payload encoding.
func WithEncoding(e encoding.Encoding) NodeOption {
	return func(c *nodeConfig) { c.enc = e }
}

// WithScheduler plugs a custom scheduler; the node stops it on Close only
// if it created the default one.
func WithScheduler(s scheduler.Scheduler) NodeOption {
	return func(c *nodeConfig) { c.sched = s }
}

// WithAnnouncePeriod sets the discovery announce/heartbeat period.
func WithAnnouncePeriod(d time.Duration) NodeOption {
	return func(c *nodeConfig) {
		if d > 0 {
			c.announcePeriod = d
		}
	}
}

// WithFailureDeadline sets how long a silent peer survives before failover.
func WithFailureDeadline(d time.Duration) NodeOption {
	return func(c *nodeConfig) {
		if d > 0 {
			c.failureDeadline = d
		}
	}
}

// WithDirectoryTTL sets the name-cache entry lifetime.
func WithDirectoryTTL(d time.Duration) NodeOption {
	return func(c *nodeConfig) {
		if d > 0 {
			c.directoryTTL = d
		}
	}
}

// WithARQ forwards tuning options to the reliable-datagram engine.
func WithARQ(opts ...protocol.ARQOption) NodeOption {
	return func(c *nodeConfig) { c.arqOpts = append(c.arqOpts, opts...) }
}

// WithFileTransfer forwards tuning options to the file engine.
func WithFileTransfer(opts ...filetransfer.Option) NodeOption {
	return func(c *nodeConfig) { c.fileOpts = append(c.fileOpts, opts...) }
}

// WithLoadProbe sets the function whose value is announced as node load.
func WithLoadProbe(f func() float64) NodeOption {
	return func(c *nodeConfig) { c.loadProbe = f }
}

// WithMTU overrides the fragmentation threshold.
func WithMTU(n int) NodeOption {
	return func(c *nodeConfig) {
		if n > 0 {
			c.mtu = n
		}
	}
}

// WithResourceBudget sets the node's admission-control budget (§3 resource
// management).
func WithResourceBudget(b ResourceBudget) NodeOption {
	return func(c *nodeConfig) { c.budget = b }
}

// WithEgress tunes the priority-aware egress plane (per-link QoS lanes,
// bulk pacing, frame coalescing). Zero fields take the plane defaults.
func WithEgress(cfg egress.Config) NodeOption {
	return func(c *nodeConfig) { c.egressCfg = cfg }
}

// WithBulkRateBPS token-bucket-shapes the node's PriorityBulk egress lane
// (file-transfer chunks) to the given wire bytes/second. Set it at or just
// below the narrowest link the node transmits over, so bulk traffic never
// fills a link queue that critical frames would then wait behind (§4
// priority inversion at the sender). Zero leaves bulk unshaped.
func WithBulkRateBPS(bps int64) NodeOption {
	return func(c *nodeConfig) { c.egressCfg.BulkRateBPS = bps }
}

// WithRPCInflightLimit caps concurrently executing remote-call handlers on
// this node; excess MTCall requests are answered MTBusy so callers fail
// over to redundant providers instead of queueing (§4.3 admission
// control). Zero (the default) means unlimited.
func WithRPCInflightLimit(n int) NodeOption {
	return func(c *nodeConfig) { c.rpcInflight = n }
}

// WithIngressShards pins the receive pipeline's worker count. Zero (the
// default) sizes it automatically: GOMAXPROCS on a real clock, one shard
// under a clock.Virtual so same-seed virtual runs stay byte-identical.
// Traffic is sharded by source node, so per-source frame order is
// preserved at any shard count.
func WithIngressShards(n int) NodeOption {
	return func(c *nodeConfig) { c.ingressShards = n }
}

// WithClock injects the node's time source (nil means the wall clock).
// Every time-driven part of the container rides it — discovery beacons,
// liveness sweeps, link monitors, ARQ retransmission timers, egress pacing
// and the default scheduler — so a node built on a clock.Virtual runs its
// full protocol behaviour in discrete-event time.
func WithClock(c clock.Clock) NodeOption {
	return func(cfg *nodeConfig) { cfg.clk = c }
}

// DefaultAnnouncePeriod balances discovery latency against chatter.
const DefaultAnnouncePeriod = 200 * time.Millisecond

// epochSalt disambiguates node epochs minted at the same instant — under a
// virtual clock every node in a process reads the identical Now.
var epochSalt atomic.Uint64

// NewNode builds and starts a container on the given transports.
func NewNode(opts ...NodeOption) (*Node, error) {
	cfg := nodeConfig{
		enc:            encoding.Binary{},
		announcePeriod: DefaultAnnouncePeriod,
		mtu:            protocol.DefaultMTU,
	}
	for _, opt := range opts {
		opt(&cfg)
	}
	if len(cfg.bearers) == 0 {
		return nil, fmt.Errorf("core: %w", ErrNoDatagram)
	}
	if err := cfg.policy.Validate(); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	id := cfg.bearers[0].tr.Node()
	seen := make(map[string]bool, len(cfg.bearers))
	for _, spec := range cfg.bearers {
		if spec.name == "" {
			return nil, fmt.Errorf("core: empty bearer name: %w", ErrBadBearer)
		}
		if spec.tr == nil {
			return nil, fmt.Errorf("core: bearer %q has no transport: %w", spec.name, ErrBadBearer)
		}
		if seen[spec.name] {
			return nil, fmt.Errorf("core: duplicate bearer %q: %w", spec.name, ErrBadBearer)
		}
		seen[spec.name] = true
		if spec.tr.Node() != id {
			return nil, fmt.Errorf("core: bearer %q is node %q, want %q: %w",
				spec.name, spec.tr.Node(), id, ErrBadBearer)
		}
	}
	if cfg.failureDeadline <= 0 {
		cfg.failureDeadline = 5 * cfg.announcePeriod
	}
	if cfg.directoryTTL <= 0 {
		cfg.directoryTTL = 6 * cfg.announcePeriod
	}
	clk := clock.Or(cfg.clk)
	n := &Node{
		id:              id,
		clk:             clk,
		bearerByName:    make(map[string]*bearerRuntime, len(cfg.bearers)),
		reach:           make(map[transport.NodeID]map[string]bool),
		stream:          cfg.stream,
		enc:             cfg.enc,
		sched:           cfg.sched,
		dir:             naming.NewDirectory(cfg.directoryTTL),
		live:            naming.NewLiveness(cfg.failureDeadline),
		types:           presentation.NewRegistry(),
		epoch:           uint64(clk.Now().UnixNano()) + epochSalt.Add(1),
		mtu:             cfg.mtu,
		log:             naming.NewLog(),
		syncAsm:         naming.NewSyncAssembler(),
		syncReqAt:       make(map[transport.NodeID]time.Time),
		announcePeriod:  cfg.announcePeriod,
		failureDeadline: cfg.failureDeadline,
		loadProbe:       cfg.loadProbe,
		services:        make(map[string]*ServiceRuntime),
		devices:         make(map[string]string),
		stop:            make(chan struct{}),
	}
	n.metrics = metrics.NewRegistry()
	n.disco = newDiscoveryCounters(n.metrics)
	if n.sched == nil {
		n.sched = scheduler.NewPool(scheduler.WithPoolClock(clk))
		n.ownSched = true
	}
	n.offerDirty = clock.NewTrigger(clk)
	n.budget = cfg.budget
	// All datagram transmission drains through the egress plane: strict
	// per-(bearer, destination) priority lanes, shaped bulk per bearer,
	// coalesced small frames. The plane's MTU budget for coalesced batches
	// tracks the node's.
	if cfg.egressCfg.MaxDatagram == 0 {
		cfg.egressCfg.MaxDatagram = cfg.mtu
	}
	cfg.egressCfg.Clock = clk
	cfg.egressCfg.Metrics = n.metrics
	n.egress = egress.NewPlane()
	profiles := make(map[string]qos.BearerProfile, len(cfg.bearers))
	for _, spec := range cfg.bearers {
		br := &bearerRuntime{
			name:    spec.name,
			tr:      spec.tr,
			profile: spec.profile,
			mon:     link.NewMonitor(spec.name, cfg.failureDeadline, clk),
		}
		n.bearers = append(n.bearers, br)
		n.bearerByName[spec.name] = br
		profiles[spec.name] = spec.profile
		// Each bearer gets its own lanes and bulk pacer: the profile's
		// BulkRateBPS overrides the node-wide rate so a 1 Mb/s WiFi pipe
		// and a 250 kb/s radio modem are shaped independently.
		bcfg := cfg.egressCfg
		if spec.profile.BulkRateBPS != 0 {
			bcfg.BulkRateBPS = spec.profile.BulkRateBPS
		}
		if err := n.egress.AddBearer(spec.name, spec.tr, bcfg); err != nil {
			n.egress.Close()
			return nil, fmt.Errorf("core: %w", err)
		}
	}
	for _, p := range qos.Levels() {
		n.classOrder[p.Index()] = cfg.policy.Order(p, profiles)
	}
	if len(n.bearers) > 1 {
		// Single-bearer nodes keep the static default route; the selector
		// (policy order × link health × peer reachability) only runs when
		// there is a choice to make.
		n.egress.SetSelector(bearerSelector{n})
	}
	// ARQ retransmissions re-enter the plane in the lane of the frame
	// they carry (the priority rides in the encoded header).
	n.arq = protocol.NewARQ(func(to transport.NodeID, frame []byte) error {
		return n.egress.Enqueue(to, protocol.PeekPriority(frame), frame)
	}, append([]protocol.ARQOption{protocol.WithClock(clk), protocol.WithMetrics(n.metrics)}, cfg.arqOpts...)...)

	n.vars = variables.New(n)
	n.events = events.New(n)
	n.rpc = rpc.New(n)
	n.rpc.SetInflightLimit(cfg.rpcInflight)
	n.files = filetransfer.New(n, cfg.fileOpts...)

	if n.loadProbe == nil {
		n.loadProbe = n.defaultLoad
	}

	// The sharded receive pipeline sits between the bearer transports and
	// the dispatcher. Per-shard protocol state (dedup, reassembly, ack
	// coalescing) is touched only by that shard's worker; the local shard
	// serves the synchronous bypass paths (self loopback, stream).
	n.ingress = ingress.New(ingress.Config{
		Shards:  cfg.ingressShards,
		Clock:   clk,
		Metrics: n.metrics,
		Deliver: n.deliverBatch,
	})
	n.shards = make([]*recvShard, n.ingress.Shards())
	for i := range n.shards {
		n.shards[i] = newRecvShard(clk, true)
	}
	n.local = newRecvShard(clk, false)

	// Each bearer's receive path is tagged with the bearer name: the link
	// monitor sees every arrival, and replies that must ride the arrival
	// link (ARQ acks, probe echoes) know where to go.
	for _, br := range n.bearers {
		br := br
		br.tr.SetHandler(func(pkt transport.Packet) {
			br.mon.SawRx(pkt.From, n.clk.Now())
			n.ingress.Enqueue(br.name, pkt)
		})
	}
	if n.stream != nil {
		n.stream.SetHandler(n.handlePacket)
	}
	// Discovery rides every bearer: digests and deltas go out on each live
	// link and receivers dedup the copies, so peer liveness survives any
	// single bearer's blackout.
	for _, br := range n.bearers {
		if err := br.tr.Join(fabric.DiscoveryGroup); err != nil {
			n.ingress.Close()
			n.egress.Close()
			return nil, fmt.Errorf("core: join discovery on %q: %w", br.name, err)
		}
	}

	n.wg.Add(2)
	clock.Go(clk, n.discoveryLoop)
	clock.Go(clk, n.offerFlushLoop)
	return n, nil
}

// defaultLoad derives load from the scheduler backlog when the default pool
// is in use.
func (n *Node) defaultLoad() float64 {
	if pool, ok := n.sched.(*scheduler.Pool); ok {
		return float64(pool.Backlog()) / float64(scheduler.DefaultQueueCap)
	}
	return 0
}

// ID returns the node identity.
func (n *Node) ID() transport.NodeID { return n.id }

// Clock implements fabric.Clocked: the node's time source, wall or virtual.
func (n *Node) Clock() clock.Clock { return n.clk }

// Types returns the node's type registry.
func (n *Node) Types() *presentation.Registry { return n.types }

// Directory implements fabric.Fabric.
func (n *Node) Directory() *naming.Directory { return n.dir }

// Self implements fabric.Fabric.
func (n *Node) Self() transport.NodeID { return n.id }

// Encoding implements fabric.Fabric.
func (n *Node) Encoding() encoding.Encoding { return n.enc }

// Schedule implements fabric.Fabric.
func (n *Node) Schedule(p qos.Priority, job func()) error {
	return n.sched.Submit(p, job)
}

// NextSeq implements fabric.Fabric.
func (n *Node) NextSeq() uint64 { return n.seq.Add(1) }

// Join implements fabric.Fabric: membership spans every bearer, because
// group traffic may arrive on whichever link the sender's policy selected.
// All bearers are attempted; the first error is reported.
func (n *Node) Join(group string) error {
	var firstErr error
	for _, br := range n.bearers {
		if err := br.tr.Join(group); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// Leave implements fabric.Fabric: leaves the group on every bearer.
func (n *Node) Leave(group string) error {
	var firstErr error
	for _, br := range n.bearers {
		if err := br.tr.Leave(group); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// encodePooled serializes f into an exactly-sized pooled buffer. The caller
// owns the result: hand it to an Owned enqueue (egress releases it after the
// wire write) or bufpool.Put it once the bytes are consumed.
func encodePooled(f *protocol.Frame) ([]byte, error) {
	buf := bufpool.Get(protocol.FrameWireSize(f))
	raw, err := protocol.AppendFrame(buf, f)
	if err != nil {
		bufpool.Put(buf)
		return nil, err
	}
	return raw, nil
}

// SendBestEffort implements fabric.Fabric.
func (n *Node) SendBestEffort(to transport.NodeID, f *protocol.Frame) error {
	if f.Seq == 0 {
		f.Seq = n.NextSeq()
	}
	raw, err := encodePooled(f)
	if err != nil {
		return err
	}
	if to == n.id {
		n.handleFrameBytes(n.id, raw)
		bufpool.Put(raw)
		return nil
	}
	if len(raw) <= n.mtu {
		// Single datagram: the steady-state path. Ownership of the
		// pooled buffer transfers to egress.
		return n.egress.EnqueueOwned(to, f.Priority, raw)
	}
	parts, err := protocol.Fragment(raw, f.Seq, n.mtu)
	bufpool.Put(raw) // fragments carry their own GC-owned copies
	if err != nil {
		return err
	}
	for _, part := range parts {
		if err := n.egress.Enqueue(to, f.Priority, part); err != nil {
			return err
		}
	}
	return nil
}

// SendGroup implements fabric.Fabric.
func (n *Node) SendGroup(group string, f *protocol.Frame) error {
	if f.Seq == 0 {
		f.Seq = n.NextSeq()
	}
	raw, err := encodePooled(f)
	if err != nil {
		return err
	}
	if len(raw) <= n.mtu {
		return n.egress.EnqueueGroupOwned(group, f.Priority, raw)
	}
	parts, err := protocol.Fragment(raw, f.Seq, n.mtu)
	bufpool.Put(raw)
	if err != nil {
		return err
	}
	for _, part := range parts {
		if err := n.egress.EnqueueGroup(group, f.Priority, part); err != nil {
			return err
		}
	}
	return nil
}

// SendReliable implements fabric.Fabric with engine-default ARQ tuning.
func (n *Node) SendReliable(to transport.NodeID, f *protocol.Frame, rel qos.Reliability, done func(error)) {
	n.SendReliableTuned(to, f, rel, fabric.ReliableOpts{}, done)
}

// SendReliableTuned implements fabric.TunedSender: SendReliable with
// per-send ARQ timeout/retry overrides carried from the primitive's QoS.
func (n *Node) SendReliableTuned(to transport.NodeID, f *protocol.Frame, rel qos.Reliability, opts fabric.ReliableOpts, done func(error)) {
	tune := protocol.SendTuning{Timeout: opts.AckTimeout, MaxRetries: opts.MaxRetries}
	finish := func(err error) {
		if done != nil {
			done(err)
		}
	}
	if f.Seq == 0 {
		f.Seq = n.NextSeq()
	}
	// Local loopback: deliver straight through the dispatcher. The
	// dispatch is synchronous and retains nothing, so the encode buffer
	// is pooled.
	if to == n.id {
		raw, err := encodePooled(f)
		if err != nil {
			finish(err)
			return
		}
		n.handleFrameBytes(n.id, raw)
		bufpool.Put(raw)
		finish(nil)
		return
	}
	if rel == qos.ReliableStream && n.stream != nil {
		raw, err := protocol.EncodeFrame(f)
		if err != nil {
			finish(err)
			return
		}
		finish(n.stream.Send(to, raw))
		return
	}
	// ARQ over the datagram transport.
	f.Flags |= protocol.FlagAckRequired
	raw, err := protocol.EncodeFrame(f)
	if err != nil {
		finish(err)
		return
	}
	parts, err := protocol.Fragment(raw, f.Seq, n.mtu)
	if err != nil {
		finish(err)
		return
	}
	if len(parts) == 1 {
		if err := n.arq.SendTuned(to, f.Seq, parts[0], tune, done); err != nil {
			finish(err)
		}
		return
	}
	// Multi-fragment reliable send: each fragment is acknowledged
	// independently; the message completes when all fragments do.
	var (
		remaining atomic.Int64
		failed    atomic.Bool
	)
	remaining.Store(int64(len(parts)))
	for _, part := range parts {
		fragFrame, derr := protocol.DecodeFrame(part)
		if derr != nil {
			finish(derr)
			return
		}
		fragSeq := n.NextSeq()
		// Re-encode with a unique per-fragment seq and ack flag.
		fragFrame.Seq = fragSeq
		fragFrame.Flags |= protocol.FlagAckRequired
		fragRaw, eerr := protocol.EncodeFrame(fragFrame)
		if eerr != nil {
			finish(eerr)
			return
		}
		if err := n.arq.SendTuned(to, fragSeq, fragRaw, tune, func(err error) {
			if err != nil {
				if !failed.Swap(true) {
					finish(err)
				}
				return
			}
			if remaining.Add(-1) == 0 && !failed.Load() {
				finish(nil)
			}
		}); err != nil {
			if !failed.Swap(true) {
				finish(err)
			}
			return
		}
	}
}

var (
	_ fabric.Fabric       = (*Node)(nil)
	_ fabric.TunedSender  = (*Node)(nil)
	_ fabric.Instrumented = (*Node)(nil)
)

// recvShard is one ingress shard's protocol-layer state. Dedup windows and
// reassembly are source-keyed, and the pipeline hashes packets by source,
// so each peer's state lives on exactly one shard and the pre-pipeline
// global dedup lock is gone (the embedded mutexes survive only for the
// rare cross-shard Forget on peer failure). The ack fields are the drain
// batch's coalescing scratch, touched only by the owning shard worker.
type recvShard struct {
	dedup *protocol.Dedup
	reasm *protocol.Reassembler
	// coalesce batches acks generated within one pipeline drain into a
	// single MTBatch per (bearer, peer) at batch end. Off for the local
	// shard: its callers dispatch one frame at a time, synchronously.
	coalesce bool
	acks     []pendingAck
	seqs     []uint64
	ackBufs  [][]byte
}

// pendingAck is one acknowledgment owed at the end of a drain batch.
type pendingAck struct {
	bearer string
	to     transport.NodeID
	seq    uint64
	done   bool
}

func newRecvShard(clk clock.Clock, coalesce bool) *recvShard {
	return &recvShard{
		dedup:    protocol.NewDedup(0),
		reasm:    protocol.NewReassembler(0, clk),
		coalesce: coalesce,
	}
}

// maxBatchNesting bounds MTBatch recursion. Depth 0 is a batch arriving as
// its own datagram (egress coalescing); depth 1 is a batch inside that
// batch (a coalesced ack batch riding an egress batch). Anything deeper
// cannot be produced by this stack and is rejected as a protocol violation
// rather than recursed into — a hostile or corrupt nested batch must not
// turn the dispatcher into unbounded recursion.
const maxBatchNesting = 2

// deliverBatch is the ingress pipeline's dispatch callback: one shard
// worker hands over a drain batch in per-source arrival order. Frame
// payloads alias the pipeline's pooled buffers, which stay alive for the
// duration of this call — every route handler consumes its payload
// synchronously (copying whatever it keeps), so no per-frame heap copy is
// taken.
func (n *Node) deliverBatch(shard int, batch []ingress.Packet) {
	sh := n.shards[shard]
	for i := range batch {
		n.handleFrameOn(sh, batch[i].Bearer, batch[i].From, batch[i].Payload, 0)
	}
	n.flushAcks(sh)
}

// handlePacket is the stream transport's receive entry point (bearer-less).
func (n *Node) handlePacket(pkt transport.Packet) {
	n.handleFrameBytes(pkt.From, pkt.Payload)
}

// handleFrameBytes decodes and routes one frame with no bearer attribution
// (local bypass, stream transport), synchronously on the caller's
// goroutine — these paths never enter the pipeline and use the dedicated
// local shard state.
func (n *Node) handleFrameBytes(from transport.NodeID, raw []byte) {
	n.handleFrameOn(n.local, "", from, raw, 0)
}

// handleFrameOn decodes and routes one frame that arrived on the named
// bearer ("" when no datagram bearer carried it) using the given shard's
// protocol state. depth counts MTBatch nesting.
func (n *Node) handleFrameOn(sh *recvShard, bearer string, from transport.NodeID, raw []byte, depth int) {
	// The frame struct is pooled: every route handler consumes it
	// synchronously and none retains the pointer past its call (the rpc
	// engine captures scalars before scheduling handler work).
	f := protocol.GetFrame()
	if err := protocol.DecodeFrameInto(f, raw); err != nil {
		protocol.PutFrame(f)
		uerr.Note(n.metrics, codeFrameDecode, err, "drop undecodable frame")
		return
	}
	n.handleFrame(sh, bearer, from, f, depth)
	protocol.PutFrame(f)
}

func (n *Node) handleFrame(sh *recvShard, bearer string, from transport.NodeID, f *protocol.Frame, depth int) {
	switch f.Type {
	case protocol.MTAck:
		n.arq.Ack(from, f.Seq)
		return
	case protocol.MTBatch:
		// Transparent batched receive: unpack coalesced frames and feed
		// each through the full decode path, so per-frame acknowledgment,
		// dedup and priority scheduling behave exactly as if the frames
		// had arrived in separate datagrams.
		if depth >= maxBatchNesting {
			_ = uerr.Newf(n.metrics, codeBatchNested, "drop batch nested beyond depth %d", maxBatchNesting)
			return
		}
		subs, err := protocol.DecodeBatch(f.Payload)
		if err != nil {
			uerr.Note(n.metrics, codeBatchDecode, err, "drop undecodable batch")
			return
		}
		for _, sub := range subs {
			n.handleFrameOn(sh, bearer, from, sub, depth+1)
		}
		return
	case protocol.MTFragment:
		// Ack-required fragments are acknowledged and deduped
		// individually before reassembly.
		if from != n.id && f.Flags&protocol.FlagAckRequired != 0 {
			n.queueAck(sh, bearer, from, f.Seq)
			if sh.dedup.Seen(from, f.Seq) {
				return
			}
		}
		complete, err := sh.reasm.Offer(from, f)
		if err != nil {
			uerr.Note(n.metrics, codeFragReassembly, err, "drop bad fragment")
			return
		}
		if complete == nil {
			return
		}
		// The reassembled message decodes through the pooled path like
		// every other arrival; its payload aliases the GC-owned
		// reassembly buffer, consumed synchronously by route.
		inner := protocol.GetFrame()
		if err := protocol.DecodeFrameInto(inner, complete); err != nil {
			protocol.PutFrame(inner)
			uerr.Note(n.metrics, codeFrameDecode, err, "drop undecodable reassembly")
			return
		}
		// Dedup the logical message too: a fully retransmitted
		// fragment set must not deliver twice.
		if from == n.id || !sh.dedup.Seen(from, inner.Seq) {
			n.route(bearer, from, inner)
		}
		protocol.PutFrame(inner)
		return
	default:
	}
	if from != n.id && f.Flags&protocol.FlagAckRequired != 0 {
		n.queueAck(sh, bearer, from, f.Seq)
		if sh.dedup.Seen(from, f.Seq) {
			return
		}
	}
	// No payload copy: the bytes alias the pipeline's pooled receive
	// buffer (or the bypass caller's encode buffer), alive until the
	// dispatch returns; route handlers copy whatever they retain.
	n.route(bearer, from, f)
}

// queueAck records an acknowledgment owed for (bearer, to, seq). On a
// pipeline shard it is deferred to the end of the drain batch so acks to
// the same peer coalesce into one datagram; on the local shard it goes out
// immediately.
func (n *Node) queueAck(sh *recvShard, bearer string, to transport.NodeID, seq uint64) {
	if !sh.coalesce {
		n.sendAck(bearer, to, seq)
		return
	}
	sh.acks = append(sh.acks, pendingAck{bearer: bearer, to: to, seq: seq})
}

// flushAcks sends every acknowledgment queued during a drain batch,
// grouping same-(bearer, peer) acks into one MTBatch of MTAck frames. A
// lone ack takes the direct path unchanged.
func (n *Node) flushAcks(sh *recvShard) {
	acks := sh.acks
	for i := range acks {
		if acks[i].done {
			continue
		}
		bearer, to := acks[i].bearer, acks[i].to
		sh.seqs = sh.seqs[:0]
		for j := i; j < len(acks); j++ {
			if !acks[j].done && acks[j].bearer == bearer && acks[j].to == to {
				acks[j].done = true
				sh.seqs = append(sh.seqs, acks[j].seq)
			}
		}
		if len(sh.seqs) == 1 {
			n.sendAck(bearer, to, sh.seqs[0])
		} else {
			n.sendAckBatch(sh, bearer, to, sh.seqs)
		}
	}
	sh.acks = sh.acks[:0]
}

// sendAckBatch coalesces several acks for one peer into a single MTBatch
// datagram on the critical lane: one egress enqueue and one wire packet
// where a drained burst would have produced one ack datagram per frame.
func (n *Node) sendAckBatch(sh *recvShard, bearer string, to transport.NodeID, seqs []uint64) {
	frames := sh.ackBufs[:0]
	size := protocol.BatchOverhead(len(seqs))
	for _, seq := range seqs {
		ack := protocol.Frame{Type: protocol.MTAck, Seq: seq, Priority: qos.PriorityCritical}
		raw, err := encodePooled(&ack)
		if err != nil {
			uerr.Note(n.metrics, codeAckEncode, err, "encode ack")
			continue
		}
		frames = append(frames, raw)
		size += len(raw)
	}
	sh.ackBufs = frames
	if len(frames) == 0 {
		return
	}
	batch, err := protocol.AppendBatch(bufpool.Get(size), frames, qos.PriorityCritical)
	for i, fr := range frames {
		bufpool.Put(fr)
		frames[i] = nil
	}
	sh.ackBufs = frames[:0]
	if err != nil {
		uerr.Note(n.metrics, codeAckEncode, err, "encode ack batch")
		return
	}
	uerr.Note(n.metrics, codeAckSend, n.egress.EnqueueOnOwned(bearer, to, qos.PriorityCritical, batch), "enqueue ack batch")
}

func (n *Node) sendAck(bearer string, to transport.NodeID, seq uint64) {
	ack := protocol.Frame{Type: protocol.MTAck, Seq: seq, Priority: qos.PriorityCritical}
	raw, err := encodePooled(&ack)
	if err != nil {
		uerr.Note(n.metrics, codeAckEncode, err, "encode ack")
		return
	}
	// Acks ride the critical lane: a delayed ack inflates the peer's ARQ
	// RTT and triggers spurious retransmissions exactly when a link is
	// congested with lower-class traffic. They are pinned to the bearer
	// the data arrived on, so acknowledgment traffic keeps measuring (and
	// keeping alive) the same link as the data it acknowledges. A refused
	// enqueue (node closing) is counted, not returned: the peer's ARQ
	// retry is the recovery path.
	uerr.Note(n.metrics, codeAckSend, n.egress.EnqueueOnOwned(bearer, to, qos.PriorityCritical, raw), "enqueue ack")
}

// route dispatches a frame to its engine.
func (n *Node) route(bearer string, from transport.NodeID, f *protocol.Frame) {
	switch f.Type {
	case protocol.MTAnnounce:
		n.handleAnnounce(from, f)
	case protocol.MTHeartbeat:
		n.handleHeartbeat(from, f)
	case protocol.MTAnnounceDelta:
		n.handleAnnounceDelta(from, f)
	case protocol.MTSyncReq:
		n.handleSyncReq(from, f)
	case protocol.MTSyncRep:
		n.handleSyncRep(from, f)
	case protocol.MTBye:
		n.handleBye(from)
	case protocol.MTProbe:
		n.handleProbe(bearer, from, f)
	case protocol.MTProbeEcho:
		n.handleProbeEcho(bearer, f)
	case protocol.MTSample:
		n.vars.HandleSample(from, f)
	case protocol.MTSnapshotReq:
		n.vars.HandleSnapshotReq(from, f)
	case protocol.MTSnapshotRep:
		n.vars.HandleSnapshotRep(from, f)
	case protocol.MTSubscribe:
		n.events.HandleSubscribe(from, f)
	case protocol.MTUnsubscribe:
		n.events.HandleUnsubscribe(from, f)
	case protocol.MTEvent:
		n.events.HandleEvent(from, f)
	case protocol.MTEventNack:
		n.events.HandleEventNack(from, f)
	case protocol.MTCall:
		n.rpc.HandleCall(from, f)
	case protocol.MTReturn:
		n.rpc.HandleReturn(from, f)
	case protocol.MTError:
		n.rpc.HandleError(from, f)
	case protocol.MTBusy:
		n.rpc.HandleBusy(from, f)
	case protocol.MTFileAnnounce:
		n.files.HandleAnnounce(from, f)
	case protocol.MTFileSubscribe:
		n.files.HandleSubscribe(from, f)
	case protocol.MTFileChunk:
		n.files.HandleChunk(from, f)
	case protocol.MTFileQuery:
		n.files.HandleQuery(from, f)
	case protocol.MTFileAck:
		n.files.HandleAck(from, f)
	case protocol.MTFileNack:
		n.files.HandleNack(from, f)
	default:
		// Unknown types drop.
	}
}

// --- discovery ---

// The discovery plane is incremental: registrations multicast a compact
// versioned MTAnnounceDelta the moment they happen (one network hop of
// discovery latency), the periodic beacon is a constant-size MTHeartbeat
// digest — O(nodes) steady-state wire cost instead of O(total records) —
// and receivers that observe a version gap, an unknown node, or a fresh
// epoch pull the full record set unicast over ARQ (MTSyncReq/MTSyncRep),
// chunked under the MTU.

// discoveryCounters holds the discovery plane's pre-resolved counter
// handles in the node registry ("discovery" component). Resolution
// happens once at construction; increments are lock-free atomics.
// Failure counts have no handles here — they live in the
// "discovery.errors" family, fed by uerr construction, and
// Node.DiscoveryStats reads them back as category sums.
type discoveryCounters struct {
	heartbeatsSent   *metrics.Counter
	heartbeatsRecv   *metrics.Counter
	deltasSent       *metrics.Counter
	deltasRecv       *metrics.Counter
	fullSent         *metrics.Counter
	syncReqsSent     *metrics.Counter
	syncReqsServed   *metrics.Counter
	syncChunksSent   *metrics.Counter
	syncDeltaReplies *metrics.Counter
	syncApplied      *metrics.Counter
	syncsTriggered   *metrics.Counter
}

func newDiscoveryCounters(reg *metrics.Registry) discoveryCounters {
	c := func(name string) *metrics.Counter { return reg.Counter("discovery", name) }
	return discoveryCounters{
		heartbeatsSent:   c("heartbeats_sent"),
		heartbeatsRecv:   c("heartbeats_received"),
		deltasSent:       c("deltas_sent"),
		deltasRecv:       c("deltas_received"),
		fullSent:         c("full_announces_sent"),
		syncReqsSent:     c("sync_requests_sent"),
		syncReqsServed:   c("sync_requests_served"),
		syncChunksSent:   c("sync_chunks_sent"),
		syncDeltaReplies: c("sync_delta_replies"),
		syncApplied:      c("sync_replies_applied"),
		syncsTriggered:   c("syncs_triggered"),
	}
}

// DiscoveryStats is a snapshot of the discovery plane's counters.
type DiscoveryStats struct {
	// HeartbeatsSent / HeartbeatsReceived count MTHeartbeat digests.
	HeartbeatsSent, HeartbeatsReceived uint64
	// DeltasSent / DeltasReceived count MTAnnounceDelta frames.
	DeltasSent, DeltasReceived uint64
	// FullAnnouncesSent counts full-state MTAnnounce broadcasts (startup
	// and explicit AnnounceNow).
	FullAnnouncesSent uint64
	// SyncRequestsSent / SyncRequestsServed count MTSyncReq frames sent
	// and answered; SyncDeltaReplies counts answers served as compact
	// catch-up deltas from the log history; SyncChunksSent counts the
	// MTSyncRep chunks of full-snapshot answers; SyncRepliesApplied
	// counts fully assembled snapshots installed into the directory.
	SyncRequestsSent, SyncRequestsServed uint64
	// SyncRequestsDropped counts requests shed by the concurrent-serve
	// cap; the requester retries on its next heartbeat.
	SyncRequestsDropped                uint64
	SyncDeltaReplies                   uint64
	SyncChunksSent, SyncRepliesApplied uint64
	// SyncsTriggered counts gap/epoch/unknown-node detections, including
	// ones suppressed by per-peer throttling.
	SyncsTriggered uint64
	// Malformed counts discovery frames dropped as undecodable or
	// mis-attributed (payload node != sender).
	Malformed uint64
	// EncodeErrors counts local encode failures (previously discarded
	// silently). SendErrors counts frames the egress plane refused
	// (node closing): since transmission drains asynchronously through
	// the plane, "sent" here means accepted into an egress lane, and
	// post-enqueue transport failures or overflow drops are accounted in
	// EgressStats, not per discovery frame.
	EncodeErrors, SendErrors uint64
}

// DiscoveryStats snapshots the discovery plane counters. It is a view
// over the node registry: plain counters read their handles, the failure
// fields sum the "discovery.errors" family by category.
func (n *Node) DiscoveryStats() DiscoveryStats {
	cat := func(c uerr.Category) uint64 {
		return n.metrics.SumCounters("discovery", "errors", metrics.L("category", c.String()))
	}
	return DiscoveryStats{
		HeartbeatsSent:      n.disco.heartbeatsSent.Value(),
		HeartbeatsReceived:  n.disco.heartbeatsRecv.Value(),
		DeltasSent:          n.disco.deltasSent.Value(),
		DeltasReceived:      n.disco.deltasRecv.Value(),
		FullAnnouncesSent:   n.disco.fullSent.Value(),
		SyncRequestsSent:    n.disco.syncReqsSent.Value(),
		SyncRequestsServed:  n.disco.syncReqsServed.Value(),
		SyncRequestsDropped: cat(uerr.CatAdmission),
		SyncDeltaReplies:    n.disco.syncDeltaReplies.Value(),
		SyncChunksSent:      n.disco.syncChunksSent.Value(),
		SyncRepliesApplied:  n.disco.syncApplied.Value(),
		SyncsTriggered:      n.disco.syncsTriggered.Value(),
		Malformed:           cat(uerr.CatDecode) + cat(uerr.CatProtocol),
		EncodeErrors:        cat(uerr.CatEncode),
		SendErrors:          cat(uerr.CatSend),
	}
}

// discoveryLoop beacons this node's digest and sweeps dead peers.
func (n *Node) discoveryLoop() {
	defer n.wg.Done()
	ticker := n.clk.NewTicker(n.announcePeriod)
	defer ticker.Stop()
	for ticker.Wait(n.stop) {
		// Introduce the node with one full-state announcement; from then
		// on the beacon is the constant-size digest. Introduction rides
		// the first tick (or an earlier explicit AnnounceNow) rather than
		// the loop's spawn: NewNode returns into the caller's
		// registration burst, and announcing concurrently with it would
		// race the record log against flushOffer — the full announce and
		// the first delta would split the offer nondeterministically.
		n.announceMu.Lock()
		introduced := n.introduced
		n.announceMu.Unlock()
		if !introduced {
			n.announceNow()
			n.sweep()
			n.bearerSweep(n.clk.Now())
			n.events.Refresh()
			continue
		}
		n.heartbeatNow()
		n.sweep()
		n.bearerSweep(n.clk.Now())
		n.events.Refresh()
	}
}

// buildRecords assembles this node's current offer from the engines and
// service table, plus one KindBearer record per datalink so peers learn
// which bearers can reach this node (and at what address, on transports
// with a dialable one). Bearer reachability rides the ordinary offer log:
// it propagates through the same deltas, digests and anti-entropy syncs as
// every other record.
func (n *Node) buildRecords() []naming.Record {
	recs := n.vars.Records()
	recs = append(recs, n.events.Records()...)
	recs = append(recs, n.rpc.Records()...)
	recs = append(recs, n.files.Records()...)
	for _, br := range n.bearers {
		rec := naming.Record{Kind: naming.KindBearer, Name: br.name, Node: n.id}
		if a, ok := br.tr.(transport.Addressable); ok {
			rec.Service = a.LocalAddr()
		}
		recs = append(recs, rec)
	}
	n.mu.Lock()
	for name, srt := range n.services {
		if srt.State() == ServiceRunning || srt.State() == ServiceInitialized {
			recs = append(recs, naming.Record{
				Kind: naming.KindService, Name: name, Service: name, Node: n.id,
			})
		}
	}
	n.mu.Unlock()
	return recs
}

// announceNow broadcasts the node's full offer and applies it locally so
// local lookups resolve without a network round trip. The record log is
// synchronized first so the announcement carries the right version.
func (n *Node) announceNow() {
	n.announceMu.Lock()
	defer n.announceMu.Unlock()
	n.introduced = true
	recs := n.buildRecords()
	// Update returns the current version whether or not anything changed.
	_, _, _, version, _ := n.log.Update(recs)
	ann := &naming.Announcement{
		Node:    n.id,
		Epoch:   n.epoch,
		Version: version,
		Load:    n.loadProbe(),
		Records: recs,
	}
	n.dir.Apply(ann, n.clk.Now())
	payload, err := naming.EncodeAnnouncement(ann)
	if err != nil {
		uerr.Note(n.metrics, codeAnnounceEncode, err, "encode full announce")
		return
	}
	frame := &protocol.Frame{
		Type:     protocol.MTAnnounce,
		Priority: qos.PriorityNormal,
		Seq:      n.NextSeq(),
		Payload:  payload,
	}
	if err := n.SendGroup(fabric.DiscoveryGroup, frame); err != nil {
		uerr.Note(n.metrics, codeAnnounceSend, err, "broadcast full announce")
		return
	}
	n.disco.fullSent.Inc()
}

// OfferChanged implements fabric.Fabric: engines call it after any
// registration or withdrawal. It signals the flush loop, which diffs the
// offer against the versioned record log and multicasts the delta — new
// resources become resolvable fleet-wide after one network hop instead of
// one announce period. The trigger coalesces, so a burst of registrations
// (a service bringing up hundreds of resources in a loop) collapses into a
// handful of batched deltas instead of one frame each: total wire cost
// stays O(records registered), and the bounded catch-up history in the log
// covers far larger version gaps.
func (n *Node) OfferChanged() {
	n.offerDirty.Signal()
}

// offerFlushLoop turns OfferChanged signals into delta broadcasts.
func (n *Node) offerFlushLoop() {
	defer n.wg.Done()
	for n.offerDirty.Wait(-1, n.stop) {
		n.flushOffer()
	}
}

// flushOffer diffs the current offer against the record log and multicasts
// one delta covering everything that changed since the previous flush.
func (n *Node) flushOffer() {
	n.announceMu.Lock()
	defer n.announceMu.Unlock()
	// Before the introduction announce there is no delta to send: peers
	// hold no prior version to diff against, and the registrations
	// accumulated so far ride the full-state announce that introduces the
	// node. Leaving the log untouched here is what makes bootstrap
	// deterministic — whichever of flushOffer and the first announce runs
	// first, the whole offer goes out in the announce, never split with a
	// racing version-zero delta.
	if !n.introduced {
		return
	}
	recs := n.buildRecords()
	added, withdrawn, from, to, changed := n.log.Update(recs)
	if !changed {
		return
	}
	now := n.clk.Now()
	load := n.loadProbe()
	// Local lookups must resolve without waiting for the multicast.
	n.dir.Apply(&naming.Announcement{
		Node: n.id, Epoch: n.epoch, Version: to, Load: load, Records: recs,
	}, now)
	payload, err := naming.EncodeDelta(&naming.Delta{
		Node: n.id, Epoch: n.epoch, From: from, To: to, Load: load,
		Added: added, Withdrawn: withdrawn,
	})
	if err != nil {
		uerr.Note(n.metrics, codeDeltaEncode, err, "encode offer delta")
		return
	}
	frame := &protocol.Frame{
		Type:     protocol.MTAnnounceDelta,
		Priority: qos.PriorityNormal,
		Seq:      n.NextSeq(),
		Payload:  payload,
	}
	if err := n.SendGroup(fabric.DiscoveryGroup, frame); err != nil {
		uerr.Note(n.metrics, codeDeltaSend, err, "broadcast offer delta")
		return
	}
	n.disco.deltasSent.Inc()
}

// heartbeatNow multicasts the constant-size liveness digest.
func (n *Node) heartbeatNow() {
	payload, err := naming.EncodeDigest(&naming.Digest{
		Node:        n.id,
		Epoch:       n.epoch,
		Version:     n.log.Version(),
		Load:        n.loadProbe(),
		RecordCount: uint32(n.log.Count()),
	})
	if err != nil {
		uerr.Note(n.metrics, codeHeartbeatEnc, err, "encode digest")
		return
	}
	frame := &protocol.Frame{
		Type:     protocol.MTHeartbeat,
		Priority: qos.PriorityNormal,
		Seq:      n.NextSeq(),
		Payload:  payload,
	}
	if err := n.SendGroup(fabric.DiscoveryGroup, frame); err != nil {
		uerr.Note(n.metrics, codeHeartbeatSend, err, "broadcast digest")
		return
	}
	n.disco.heartbeatsSent.Inc()
}

func (n *Node) handleAnnounce(from transport.NodeID, f *protocol.Frame) {
	ann, err := naming.DecodeAnnouncement(f.Payload)
	if err != nil {
		uerr.Note(n.metrics, codeDiscoMalformed, err, "announce decode")
		return
	}
	if ann.Node != from {
		uerr.Newf(n.metrics, codeNodeMismatch, "announce from %s claims node %s", from, ann.Node)
		return
	}
	if from == n.id {
		return
	}
	now := n.clk.Now()
	n.live.Touch(from, now)
	n.dir.Apply(ann, now)
	n.applyBearerOffer(from, ann.Records)
}

func (n *Node) handleHeartbeat(from transport.NodeID, f *protocol.Frame) {
	g, err := naming.DecodeDigest(f.Payload)
	if err != nil {
		uerr.Note(n.metrics, codeDiscoMalformed, err, "digest decode")
		return
	}
	if g.Node != from {
		uerr.Newf(n.metrics, codeNodeMismatch, "digest from %s claims node %s", from, g.Node)
		return
	}
	if from == n.id {
		return
	}
	n.disco.heartbeatsRecv.Inc()
	now := n.clk.Now()
	n.live.Touch(from, now)
	if n.dir.ApplyDigest(g, now) {
		n.requestSync(from)
	}
}

func (n *Node) handleAnnounceDelta(from transport.NodeID, f *protocol.Frame) {
	d, err := naming.DecodeDelta(f.Payload)
	if err != nil {
		uerr.Note(n.metrics, codeDiscoMalformed, err, "delta decode")
		return
	}
	if d.Node != from {
		uerr.Newf(n.metrics, codeNodeMismatch, "delta from %s claims node %s", from, d.Node)
		return
	}
	if from == n.id {
		return
	}
	n.disco.deltasRecv.Inc()
	now := n.clk.Now()
	n.live.Touch(from, now)
	n.applyBearerDelta(from, d.Added, d.Withdrawn)
	if n.dir.ApplyDelta(d, now) {
		n.requestSync(from)
	}
}

// requestSync asks a peer for its full record set, at most once per
// announce period per peer: if the request or its reply is lost, the next
// heartbeat re-detects the gap and retries.
func (n *Node) requestSync(to transport.NodeID) {
	n.disco.syncsTriggered.Inc()
	now := n.clk.Now()
	n.syncMu.Lock()
	if at, ok := n.syncReqAt[to]; ok && now.Sub(at) < n.announcePeriod {
		n.syncMu.Unlock()
		return
	}
	n.syncReqAt[to] = now
	n.syncMu.Unlock()
	epoch, version, _ := n.dir.NodeVersion(to)
	frame := &protocol.Frame{
		Type:     protocol.MTSyncReq,
		Priority: qos.PriorityHigh,
		Seq:      n.NextSeq(),
		Payload:  naming.EncodeSyncRequest(&naming.SyncRequest{KnownEpoch: epoch, KnownVersion: version}),
	}
	if err := n.SendBestEffort(to, frame); err != nil {
		uerr.Note(n.metrics, codeSyncReqSend, err, "send sync request")
		return
	}
	n.disco.syncReqsSent.Inc()
}

// syncFrameOverhead is headroom reserved for the frame header when sizing
// sync chunks so each rides in a single datagram.
const syncFrameOverhead = 64

// syncDeltaMaxRecords bounds the catch-up-delta reply: a gap touching more
// records than this is served as a chunked snapshot instead. Chunks ride
// one per datagram with independent ARQ, so a single lost packet costs one
// chunk retransmission — a multi-fragment mega-delta would fail whole.
const syncDeltaMaxRecords = 64

// maxConcurrentSyncServes caps full-state replies in flight per node. A
// thundering herd of requesters (mass join, partition heal) is served in
// rounds — the dropped requesters simply re-request on the next heartbeat —
// instead of flooding the medium until every reply misses its ARQ budget
// (congestion collapse).
const maxConcurrentSyncServes = 4

func (n *Node) handleSyncReq(from transport.NodeID, f *protocol.Frame) {
	req, err := naming.DecodeSyncRequest(f.Payload)
	if err != nil {
		uerr.Note(n.metrics, codeDiscoMalformed, err, "sync request decode")
		return
	}
	if from == n.id {
		return
	}
	n.live.Touch(from, n.clk.Now())
	// A requester only slightly behind in the current epoch gets a
	// compact catch-up delta from the log history — O(gap) wire bytes —
	// instead of the full chunked catalog. This keeps anti-entropy cheap
	// under registration churn, when version gaps are routine.
	if req.KnownEpoch == n.epoch {
		if added, withdrawn, to, ok := n.log.DeltaSince(req.KnownVersion); ok &&
			len(added)+len(withdrawn) <= syncDeltaMaxRecords {
			if to == req.KnownVersion {
				return // requester already current (racing digest)
			}
			payload, err := naming.EncodeDelta(&naming.Delta{
				Node: n.id, Epoch: n.epoch, From: req.KnownVersion, To: to,
				Load: n.loadProbe(), Added: added, Withdrawn: withdrawn,
			})
			if err != nil {
				uerr.Note(n.metrics, codeSyncRepEncode, err, "encode catch-up delta")
				return
			}
			frame := &protocol.Frame{
				Type:     protocol.MTAnnounceDelta,
				Priority: qos.PriorityHigh,
				Seq:      n.NextSeq(),
				Payload:  payload,
			}
			n.SendReliable(from, frame, qos.ReliableARQ, func(err error) {
				uerr.Note(n.metrics, codeSyncRepSend, err, "deliver catch-up delta")
			})
			n.disco.syncReqsServed.Inc()
			n.disco.syncDeltaReplies.Inc()
			return
		}
	}
	if n.syncServing.Add(1) > maxConcurrentSyncServes {
		// At capacity: drop; the requester retries on its next heartbeat.
		n.syncServing.Add(-1)
		uerr.Newf(n.metrics, codeSyncShed, "serve cap %d reached, dropping request from %s",
			maxConcurrentSyncServes, from)
		return
	}
	recs, version := n.log.Snapshot()
	ann := &naming.Announcement{
		Node: n.id, Epoch: n.epoch, Version: version,
		Load: n.loadProbe(), Records: recs,
	}
	chunks, err := naming.EncodeSyncChunks(ann, n.mtu-syncFrameOverhead)
	if err != nil {
		n.syncServing.Add(-1)
		uerr.Note(n.metrics, codeSyncRepEncode, err, "encode sync chunks")
		return
	}
	var outstanding atomic.Int64
	outstanding.Store(int64(len(chunks)))
	for _, chunk := range chunks {
		frame := &protocol.Frame{
			Type:     protocol.MTSyncRep,
			Priority: qos.PriorityHigh,
			Seq:      n.NextSeq(),
			Payload:  chunk,
		}
		n.SendReliable(from, frame, qos.ReliableARQ, func(err error) {
			uerr.Note(n.metrics, codeSyncRepSend, err, "deliver sync chunk")
			if outstanding.Add(-1) == 0 {
				n.syncServing.Add(-1)
			}
		})
	}
	n.disco.syncReqsServed.Inc()
	n.disco.syncChunksSent.Add(uint64(len(chunks)))
}

func (n *Node) handleSyncRep(from transport.NodeID, f *protocol.Frame) {
	c, err := naming.DecodeSyncChunk(f.Payload)
	if err != nil {
		uerr.Note(n.metrics, codeDiscoMalformed, err, "sync chunk decode")
		return
	}
	if c.Node != from {
		uerr.Newf(n.metrics, codeNodeMismatch, "sync chunk from %s claims node %s", from, c.Node)
		return
	}
	if from == n.id {
		return
	}
	n.syncMu.Lock()
	ann := n.syncAsm.Offer(c)
	n.syncMu.Unlock()
	if ann == nil {
		return
	}
	now := n.clk.Now()
	n.live.Touch(from, now)
	n.dir.Apply(ann, now)
	n.applyBearerOffer(from, ann.Records)
	n.disco.syncApplied.Inc()
}

func (n *Node) handleBye(from transport.NodeID) {
	if from == n.id {
		return
	}
	n.live.Forget(from)
	n.peerGone(from)
}

// --- bearer plane ---

// The bearer plane routes each egress frame onto one of the node's
// datalinks. Policy (qos.LinkPolicy, precomputed per class at
// construction) supplies the static preference order; the per-bearer link
// monitors supply dynamic health; discovery-advertised KindBearer records
// plus per-bearer receive history supply peer reachability. Selection runs
// per enqueue, so an ARQ retransmission re-selects — a frame stranded on a
// bearer that blacks out follows its class's failover order on the next
// retry, and bearerSweep additionally reroutes whole queues the moment a
// monitor declares a bearer down.

// bearerSelector adapts the node to egress.Selector without exporting the
// selection methods on Node.
type bearerSelector struct{ n *Node }

func (s bearerSelector) Unicast(to transport.NodeID, pr qos.Priority) string {
	return s.n.selectBearer(to, pr)
}

func (s bearerSelector) Group(group string, pr qos.Priority) []string {
	return s.n.selectGroupBearers(group, pr)
}

// classBearerOrder returns the policy order for a priority (defaulting
// out-of-range priorities to PriorityNormal, mirroring the egress plane).
func (n *Node) classBearerOrder(pr qos.Priority) []string {
	i := pr.Index()
	if i < 0 {
		i = qos.PriorityNormal.Index()
	}
	return n.classOrder[i]
}

// selectBearer picks the bearer for one unicast frame: the first bearer in
// the class's policy order that is both healthy and believed able to reach
// the destination; failing that, the first that can reach it (a link the
// monitor calls down but the peer is known on beats a healthy link the
// peer was never seen on — sending into a maybe-down link can succeed,
// sending to a transport that has no address for the peer cannot);
// failing that, the first healthy bearer; failing everything, the class's
// primary.
func (n *Node) selectBearer(to transport.NodeID, pr qos.Priority) string {
	order := n.classBearerOrder(pr)
	now := n.clk.Now()
	firstReach, firstHealthy := "", ""
	for _, name := range order {
		br := n.bearerByName[name]
		if br == nil {
			continue
		}
		healthy := br.mon.Healthy(now)
		reach := br.mon.PeerHeard(to, now) || n.peerAdvertises(to, name)
		switch {
		case healthy && reach:
			return name
		case reach && firstReach == "":
			firstReach = name
		case healthy && firstHealthy == "":
			firstHealthy = name
		}
	}
	if firstReach != "" {
		return firstReach
	}
	if firstHealthy != "" {
		return firstHealthy
	}
	return order[0]
}

// selectGroupBearers picks the bearers for one group frame. Discovery
// rides every bearer — digests are constant-size, receivers dedup the
// copies, and a heartbeat on each link is what keeps every link monitor
// fed for free — while data groups ride the class's preferred healthy
// bearer only.
func (n *Node) selectGroupBearers(group string, pr qos.Priority) []string {
	if group == fabric.DiscoveryGroup {
		names := make([]string, len(n.bearers))
		for i, br := range n.bearers {
			names[i] = br.name
		}
		return names
	}
	order := n.classBearerOrder(pr)
	now := n.clk.Now()
	for _, name := range order {
		if br := n.bearerByName[name]; br != nil && br.mon.Healthy(now) {
			return []string{name}
		}
	}
	return order[:1]
}

// peerAdvertises reports whether the peer's discovered offer includes the
// named bearer.
func (n *Node) peerAdvertises(peer transport.NodeID, bearer string) bool {
	n.reachMu.RLock()
	defer n.reachMu.RUnlock()
	return n.reach[peer][bearer]
}

// applyBearerOffer replaces the cached bearer set for a peer from a full
// offer (announce or assembled sync), and keeps PeerBook transports'
// address books in step with the advertised per-bearer addresses.
func (n *Node) applyBearerOffer(peer transport.NodeID, recs []naming.Record) {
	if peer == n.id {
		return
	}
	set := make(map[string]string)
	for _, rec := range recs {
		if rec.Kind == naming.KindBearer {
			set[rec.Name] = rec.Service // Service carries the dialable address
		}
	}
	n.reachMu.Lock()
	old := n.reach[peer]
	if len(set) == 0 {
		delete(n.reach, peer)
	} else {
		m := make(map[string]bool, len(set))
		for name := range set {
			m[name] = true
		}
		n.reach[peer] = m
	}
	n.reachMu.Unlock()
	for name, addr := range set {
		n.addBearerPeer(name, peer, addr)
	}
	for name := range old {
		if _, still := set[name]; !still {
			n.removeBearerPeer(name, peer)
		}
	}
}

// applyBearerDelta updates the cached bearer set from an incremental
// offer delta.
func (n *Node) applyBearerDelta(peer transport.NodeID, added []naming.Record, withdrawn []naming.RecordKey) {
	if peer == n.id {
		return
	}
	for _, rec := range added {
		if rec.Kind != naming.KindBearer {
			continue
		}
		n.reachMu.Lock()
		m := n.reach[peer]
		if m == nil {
			m = make(map[string]bool)
			n.reach[peer] = m
		}
		m[rec.Name] = true
		n.reachMu.Unlock()
		n.addBearerPeer(rec.Name, peer, rec.Service)
	}
	for _, key := range withdrawn {
		if key.Kind != naming.KindBearer {
			continue
		}
		n.reachMu.Lock()
		delete(n.reach[peer], key.Name)
		if len(n.reach[peer]) == 0 {
			delete(n.reach, peer)
		}
		n.reachMu.Unlock()
		n.removeBearerPeer(key.Name, peer)
	}
}

// addBearerPeer installs a peer's advertised address into the matching
// local bearer's address book, when that bearer's transport has one.
func (n *Node) addBearerPeer(bearer string, peer transport.NodeID, addr string) {
	br := n.bearerByName[bearer]
	if br == nil || addr == "" || peer == n.id {
		return
	}
	if pb, ok := br.tr.(transport.PeerBook); ok {
		_ = pb.AddPeer(peer, addr)
	}
}

// removeBearerPeer drops a departed peer from the matching local bearer's
// address book.
func (n *Node) removeBearerPeer(bearer string, peer transport.NodeID) {
	br := n.bearerByName[bearer]
	if br == nil {
		return
	}
	if pb, ok := br.tr.(transport.PeerBook); ok {
		pb.RemovePeer(peer)
	}
}

// handleProbe answers a link-monitor probe: echo the payload back on the
// bearer it arrived on. The probe rides PriorityHigh so a congested bulk
// lane cannot make a live link look dead.
func (n *Node) handleProbe(bearer string, from transport.NodeID, f *protocol.Frame) {
	if from == n.id {
		return
	}
	echo := &protocol.Frame{
		Type:     protocol.MTProbeEcho,
		Priority: qos.PriorityHigh,
		Seq:      n.NextSeq(),
		Payload:  f.Payload,
	}
	raw, err := encodePooled(echo)
	if err != nil {
		uerr.Note(n.metrics, codeProbeEncode, err, "encode probe echo")
		return
	}
	uerr.Note(n.metrics, codeProbeSend, n.egress.EnqueueOnOwned(bearer, from, qos.PriorityHigh, raw), "enqueue probe echo")
}

// handleProbeEcho closes a probe round trip on the bearer that carried it.
func (n *Node) handleProbeEcho(bearer string, f *protocol.Frame) {
	br := n.bearerByName[bearer]
	if br == nil {
		return
	}
	r := encoding.NewReader(f.Payload)
	nonce := r.Uint64()
	if r.Err() != nil {
		return
	}
	br.mon.ProbeEchoed(nonce, n.clk.Now())
}

// bearerSweep runs once per announce period on multi-bearer nodes: it
// probes bearers that have gone quiet (a healthy bearer is never quiet —
// discovery digests ride every bearer every period — so silence means the
// link, not the fleet), and on a healthy→down transition reroutes the dead
// bearer's queued frames through the selector so failover happens within
// the failure deadline instead of waiting for per-frame retries.
func (n *Node) bearerSweep(now time.Time) {
	if len(n.bearers) <= 1 {
		return
	}
	for _, br := range n.bearers {
		if br.mon.Idle(now, n.announcePeriod) && now.Sub(br.mon.LastProbe()) >= n.announcePeriod {
			n.probeBearer(br, now)
		}
		if br.mon.Healthy(now) {
			br.wasDown.Store(false)
			continue
		}
		if !br.wasDown.Swap(true) {
			n.egress.Reroute(br.name)
		}
	}
}

// probeBearer sends one MTProbe to every live peer expected on the bearer.
// Probes keep flowing while the bearer is down, which is how its recovery
// is detected: the first echo marks it healthy again and traffic fails
// back per policy.
func (n *Node) probeBearer(br *bearerRuntime, now time.Time) {
	for _, peer := range n.live.Peers() {
		if !br.mon.PeerKnown(peer) && !n.peerAdvertises(peer, br.name) {
			continue
		}
		w := encoding.NewWriter(8)
		w.Uint64(br.mon.NextProbe(now))
		frame := &protocol.Frame{
			Type:     protocol.MTProbe,
			Priority: qos.PriorityHigh,
			Seq:      n.NextSeq(),
			Payload:  w.Bytes(),
		}
		raw, err := encodePooled(frame)
		if err != nil {
			uerr.Note(n.metrics, codeProbeEncode, err, "encode probe")
			return
		}
		uerr.Note(n.metrics, codeProbeSend, n.egress.EnqueueOnOwned(br.name, peer, qos.PriorityHigh, raw), "enqueue probe")
	}
}

// LinkStats describes one bearer's declared profile and observed state —
// one uniform shape per link whatever transport backs it.
type LinkStats struct {
	// Name is the bearer name; Profile its declared characteristics.
	Name    string
	Profile qos.BearerProfile
	// Healthy mirrors the link monitor's verdict at snapshot time.
	Healthy bool
	// Link is the monitor's quality report (last-heard, probe RTT EWMA,
	// probe loss, peers heard).
	Link link.Report
	// Transport is the bearer transport's counter snapshot.
	Transport transport.Stats
	// Egress is the bearer's egress-lane snapshot (per-class queued/sent/
	// dropped, pacer waits, reroutes).
	Egress egress.Stats
}

// LinkStats snapshots every bearer, in registration order.
func (n *Node) LinkStats() []LinkStats {
	now := n.clk.Now()
	out := make([]LinkStats, 0, len(n.bearers))
	for _, br := range n.bearers {
		es, _ := n.egress.BearerStats(br.name)
		rep := br.mon.Report(now)
		out = append(out, LinkStats{
			Name:      br.name,
			Profile:   br.profile,
			Healthy:   rep.Healthy,
			Link:      rep,
			Transport: br.tr.Stats(),
			Egress:    es,
		})
	}
	return out
}

// Bearers lists the node's bearer names in registration order.
func (n *Node) Bearers() []string {
	out := make([]string, len(n.bearers))
	for i, br := range n.bearers {
		out[i] = br.name
	}
	return out
}

// sweep detects failed peers and expired directory entries.
func (n *Node) sweep() {
	now := n.clk.Now()
	// The node's own records never expire: the old full-state announce
	// re-applied them every tick; under digest beacons they are touched
	// explicitly instead.
	n.dir.TouchNode(n.id, now)
	for _, node := range n.live.Sweep(now) {
		n.peerGone(node)
	}
	// Records of live peers never expire out from under them: freshness
	// follows liveness (any discovery frame), so a queue-delayed or
	// version-skewed digest cannot purge a healthy node's catalog. The
	// directory TTL remains as a backstop for nodes liveness has lost.
	for _, node := range n.live.Peers() {
		n.dir.TouchNode(node, now)
	}
	for _, node := range n.dir.Expire(now) {
		if node == n.id {
			continue
		}
		// TTL expiry of every record is failure-equivalent.
		n.live.Forget(node)
		n.peerGone(node)
	}
}

// peerGone clears all state tied to a failed or departed node and notifies
// the engines and registered callbacks (§3 cache clearing + §4.3 failover).
func (n *Node) peerGone(node transport.NodeID) {
	n.dir.RemoveNode(node)
	// The peer's dedup window lives on the ingress shard its traffic
	// hashes to (plus the local-bypass shard); forget it there so a
	// rejoining peer starting from seq 1 is not silently dropped.
	n.shards[n.ingress.ShardOf(node)].dedup.Forget(node)
	n.local.dedup.Forget(node)
	n.syncMu.Lock()
	n.syncAsm.Forget(node)
	delete(n.syncReqAt, node)
	n.syncMu.Unlock()
	// Bearer plane: forget the peer's advertised reachability, its
	// per-bearer presence, and any address-book entries discovery
	// installed for it.
	n.reachMu.Lock()
	delete(n.reach, node)
	n.reachMu.Unlock()
	for _, br := range n.bearers {
		br.mon.ForgetPeer(node)
		if pb, ok := br.tr.(transport.PeerBook); ok {
			pb.RemovePeer(node)
		}
	}
	n.events.PeerGone(node)
	n.files.PeerGone(node)
	n.mu.Lock()
	cbs := make([]func(transport.NodeID), len(n.peerFailedCB))
	copy(cbs, n.peerFailedCB)
	n.mu.Unlock()
	for _, cb := range cbs {
		cb(node)
	}
}

// OnPeerFailed registers a callback invoked when a peer node is declared
// failed or says goodbye.
func (n *Node) OnPeerFailed(cb func(transport.NodeID)) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.peerFailedCB = append(n.peerFailedCB, cb)
}

// AnnounceNow forces an immediate full-state announcement. Registration
// paths announce incrementally on their own (OfferChanged); this remains
// for tests and for operators who want a full refresh pushed out.
func (n *Node) AnnounceNow() { n.announceNow() }

// OfferVersion reports the node's current record-log version. Remote
// directories citing the same version for this node hold its exact offer.
func (n *Node) OfferVersion() uint64 { return n.log.Version() }

// Peers lists peers currently believed alive.
func (n *Node) Peers() []transport.NodeID { return n.live.Peers() }

// Close sends a goodbye, stops loops, services and the scheduler.
func (n *Node) Close() error {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return nil
	}
	n.closed = true
	n.mu.Unlock()

	// Stop services in reverse start order.
	n.stopAllServices()

	// Goodbye to the fleet. A failed goodbye is counted, not fatal: peers
	// fall back to the failure deadline.
	bye := &protocol.Frame{Type: protocol.MTBye, Priority: qos.PriorityHigh, Seq: n.NextSeq()}
	uerr.Note(n.metrics, codeByeSend, n.SendGroup(fabric.DiscoveryGroup, bye), "broadcast goodbye")

	close(n.stop)
	clock.Blocking(n.clk, n.wg.Wait)
	// Drain the receive pipeline before the ARQ and egress planes go
	// down: queued arrivals still dispatch (final acks enqueue onto a
	// live egress), then the workers stop.
	n.ingress.Close()
	n.arq.Close()
	// Flush the egress plane (goodbye, final acks) before the transports
	// close underneath it.
	n.egress.Close()
	if n.ownSched {
		n.sched.Stop()
	}
	// Close every bearer transport exactly once, keeping the first error.
	var err error
	for _, br := range n.bearers {
		if cerr := br.tr.Close(); err == nil {
			err = cerr
		}
	}
	if n.stream != nil {
		if serr := n.stream.Close(); err == nil {
			err = serr
		}
	}
	return err
}

// Engines expose the primitive runtimes to the Context layer.

// Variables returns the §4.1 engine.
func (n *Node) Variables() *variables.Engine { return n.vars }

// Events returns the §4.2 engine.
func (n *Node) Events() *events.Engine { return n.events }

// RPC returns the §4.3 engine.
func (n *Node) RPC() *rpc.Engine { return n.rpc }

// Files returns the §4.4 engine.
func (n *Node) Files() *filetransfer.Engine { return n.files }

// EgressStats snapshots the egress plane counters (per-class enqueued /
// sent / dropped / coalesced, pacing waits, transport errors).
func (n *Node) EgressStats() egress.Stats { return n.egress.Stats() }

// IngressShards reports the receive pipeline's worker count.
func (n *Node) IngressShards() int { return n.ingress.Shards() }

// IngressDelivered reports how many packets the receive pipeline has
// dispatched to the frame dispatcher so far. Benchmarks and tests quiesce
// on it; per-shard detail lives in the "ingress" metrics families.
func (n *Node) IngressDelivered() uint64 { return n.ingress.Delivered() }

// Metrics implements fabric.Instrumented: the node's unified registry.
// Engines resolve their counter handles from it at construction, and
// every uerr constructed with it lands in a "<component>.errors" family.
func (n *Node) Metrics() *metrics.Registry { return n.metrics }

// MetricsSnapshot samples the node's point-in-time gauges (link health
// and RTT, transport byte counts, scheduler backlog) into the registry
// and exports everything — one deterministic, scrapeable view of every
// plane. Two same-seed virtual-time runs export byte-identical text.
func (n *Node) MetricsSnapshot() metrics.Snapshot {
	n.sampleGauges()
	return n.metrics.Snapshot()
}

// sampleGauges mirrors externally-owned state into registry gauges at
// snapshot time: transports are constructed outside the node and keep
// their own counters, and link health is a verdict, not an event stream,
// so neither can feed the registry incrementally.
func (n *Node) sampleGauges() {
	now := n.clk.Now()
	for _, br := range n.bearers {
		lb := metrics.L("bearer", br.name)
		rep := br.mon.Report(now)
		healthy := int64(0)
		if rep.Healthy {
			healthy = 1
		}
		n.metrics.Gauge("link", "healthy", lb).Set(healthy)
		n.metrics.Gauge("link", "rtt_us", lb).Set(rep.RTT.Microseconds())
		n.metrics.Gauge("link", "probe_loss_ppm", lb).Set(int64(rep.ProbeLoss * 1e6))
		n.metrics.Gauge("link", "peers_heard", lb).Set(int64(rep.PeersHeard))
		ts := br.tr.Stats()
		n.metrics.Gauge("transport", "packets_sent", lb).Set(int64(ts.PacketsSent))
		n.metrics.Gauge("transport", "bytes_sent", lb).Set(int64(ts.BytesSent))
		n.metrics.Gauge("transport", "packets_wire", lb).Set(int64(ts.PacketsWire))
		n.metrics.Gauge("transport", "bytes_wire", lb).Set(int64(ts.BytesWire))
		n.metrics.Gauge("transport", "packets_received", lb).Set(int64(ts.PacketsRecv))
		n.metrics.Gauge("transport", "bytes_received", lb).Set(int64(ts.BytesRecv))
		n.metrics.Gauge("transport", "packets_dropped", lb).Set(int64(ts.PacketsDropped))
	}
	if pool, ok := n.sched.(*scheduler.Pool); ok {
		n.metrics.Gauge("scheduler", "backlog").Set(int64(pool.Backlog()))
	}
}

// SetBulkRate re-shapes the *default bearer's* PriorityBulk egress lane at
// runtime (0 turns shaping off) — for links whose capacity is discovered
// or negotiated after the node starts. On a multi-bearer node only the
// first-registered bearer is affected; use SetBearerBulkRate to re-shape a
// named bearer.
func (n *Node) SetBulkRate(bps int64) { n.egress.SetBulkRate(bps) }

// SetBearerBulkRate re-shapes one named bearer's PriorityBulk lane at
// runtime (0 turns shaping off). It reports whether the bearer exists.
func (n *Node) SetBearerBulkRate(name string, bps int64) bool {
	return n.egress.SetBearerBulkRate(name, bps)
}

// FlushEgress blocks until every frame queued on the egress plane at call
// time has been handed to the transport. Tests and experiments use it to
// line wire-level measurements up with the asynchronous drain.
func (n *Node) FlushEgress() { n.egress.Flush() }
