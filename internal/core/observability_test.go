package core

import (
	"encoding/json"
	"errors"
	"strings"
	"testing"
	"time"

	"uavmw/internal/fabric"
	"uavmw/internal/metrics"
	"uavmw/internal/transport"
	"uavmw/internal/uerr"
)

// failingTransport wraps an endpoint and fails every send — the bearer
// is up but the medium rejects everything, the shape of a dead radio.
type failingTransport struct {
	transport.Transport
}

var errMediumDead = errors.New("medium dead")

func (f *failingTransport) Send(transport.NodeID, []byte) error { return errMediumDead }
func (f *failingTransport) SendGroup(string, []byte) error      { return errMediumDead }

// Discovery beaconing is fire-and-forget: before the observability plane
// its send failures were discarded. They must now surface as typed
// egress.errors{category=send} counts in the node registry.
func TestBeaconSendFailuresAreCounted(t *testing.T) {
	bus := transport.NewBus()
	ep, err := bus.Endpoint("solo")
	if err != nil {
		t.Fatal(err)
	}
	n, err := NewNode(WithDatagram(&failingTransport{Transport: ep}))
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = n.Close() }()

	n.AnnounceNow()
	n.FlushEgress()

	typed := n.Metrics().SumCounters("egress", "errors",
		metrics.L("category", uerr.CatSend.String()))
	if typed == 0 {
		t.Fatal("beacon send failures left egress.errors{send} at 0")
	}
	if !strings.Contains(n.MetricsSnapshot().Text(), "counter egress.errors") {
		t.Fatal("MetricsSnapshot does not export the egress.errors family")
	}
}

// The node is the container's single Instrumented fabric: every engine
// resolved through fabric.MetricsOf must land in the same registry that
// MetricsSnapshot exports.
func TestNodeIsTheSingleInstrumentedRegistry(t *testing.T) {
	bus := transport.NewBus()
	n := newBusNode(t, bus, "a")
	if fabric.MetricsOf(n) != n.Metrics() {
		t.Fatal("fabric.MetricsOf(node) is not the node registry")
	}
}

// MetricsSnapshot must be scrapeable: deterministic ordering, valid JSON,
// and the per-plane families present after real traffic.
func TestMetricsSnapshotExportsEveryPlane(t *testing.T) {
	bus := transport.NewBus()
	a := newBusNode(t, bus, "a")
	b := newBusNode(t, bus, "b")

	waitUntil(t, 2*time.Second, "nodes hear each other's heartbeats", func() bool {
		return a.DiscoveryStats().HeartbeatsReceived > 0 &&
			b.DiscoveryStats().HeartbeatsReceived > 0
	})

	snap := a.MetricsSnapshot()
	text := snap.Text()
	for _, want := range []string{
		"counter discovery.heartbeats_sent",
		"counter egress.enqueued",
		"gauge transport.packets_sent",
		"gauge link.healthy",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("snapshot text missing %q:\n%s", want, text)
		}
	}
	data, err := snap.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var decoded map[string]any
	if err := json.Unmarshal(data, &decoded); err != nil {
		t.Fatalf("snapshot JSON does not parse: %v", err)
	}
	// DiscoveryStats is a view over the same series the snapshot exports.
	ds := a.DiscoveryStats()
	if ds.HeartbeatsSent == 0 {
		t.Fatal("DiscoveryStats view reports no heartbeats after convergence")
	}
}
