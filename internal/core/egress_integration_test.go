package core

import (
	"context"
	"sync/atomic"
	"testing"
	"time"

	"uavmw/internal/naming"
	"uavmw/internal/netsim"
	"uavmw/internal/presentation"
	"uavmw/internal/qos"
	"uavmw/internal/transport"
)

// TestBatchedFramesDeliverTransparently pins the coalescing round trip end
// to end: a back-to-back burst of small multicast occurrences is packed
// into MTBatch datagrams by the publisher's egress plane and unpacked by
// the receiving container with no occurrence lost or reordered.
func TestBatchedFramesDeliverTransparently(t *testing.T) {
	net := netsim.New(netsim.Config{Seed: 21, Latency: 200 * time.Microsecond})
	defer net.Close()
	pub := newSimNode(t, net, "uav")
	sub := newSimNode(t, net, "gs")
	syncNodes(t, pub, sub)

	p, err := pub.Events().Offer("batch.burst", "it", presentation.Uint32(), mcastEventQoS)
	if err != nil {
		t.Fatal(err)
	}
	waitUntil(t, 3*time.Second, "event record", func() bool {
		return sub.Directory().ProviderCount(naming.KindEvent, "batch.burst") == 1
	})
	var last atomic.Uint32
	var count atomic.Int64
	if _, err := sub.Events().Subscribe("batch.burst", presentation.Uint32(), mcastEventQoS,
		func(v any, _ transport.NodeID) {
			seq := v.(uint32)
			if prev := last.Load(); seq <= prev {
				t.Errorf("occurrence %d arrived after %d", seq, prev)
			}
			last.Store(seq)
			count.Add(1)
		}); err != nil {
		t.Fatal(err)
	}
	waitUntil(t, 3*time.Second, "subscriber registration", func() bool {
		return len(p.Subscribers()) == 1
	})

	const n = 60
	ctx := context.Background()
	for i := 1; i <= n; i++ {
		if err := p.Publish(ctx, uint32(i)); err != nil {
			t.Fatalf("publish %d: %v", i, err)
		}
	}
	waitUntil(t, 5*time.Second, "all occurrences", func() bool {
		return count.Load() == n
	})
	// The burst outpaces the drainer, so at least some frames must have
	// ridden in shared MTBatch datagrams.
	if coalesced := pub.EgressStats().Totals().Coalesced; coalesced == 0 {
		t.Error("no frames coalesced during a back-to-back burst")
	}
}

// TestEgressStatsAccounting pins Node.EgressStats: frames a node sends are
// visible per class with no drops on an uncongested link.
func TestEgressStatsAccounting(t *testing.T) {
	net := netsim.New(netsim.Config{Seed: 22})
	defer net.Close()
	a := newSimNode(t, net, "a")
	b := newSimNode(t, net, "b")
	syncNodes(t, a, b)

	vp, err := a.Variables().Offer("batch.var", "it", presentation.Uint32(), qos.VariableQoS{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := vp.Publish(uint32(i)); err != nil {
			t.Fatal(err)
		}
	}
	a.FlushEgress()
	st := a.EgressStats()
	if tot := st.Totals(); tot.Enqueued == 0 || tot.Sent == 0 {
		t.Fatalf("no egress activity recorded: %+v", tot)
	}
	if dropped := st.Totals().Dropped; dropped != 0 {
		t.Errorf("%d frames dropped on an idle link", dropped)
	}
}
