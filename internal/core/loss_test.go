package core

import (
	"context"
	"sync/atomic"
	"testing"
	"time"

	"uavmw/internal/filetransfer"
	"uavmw/internal/naming"
	"uavmw/internal/netsim"
	"uavmw/internal/presentation"
	"uavmw/internal/protocol"
	"uavmw/internal/qos"
	"uavmw/internal/transport"
	"uavmw/internal/variables"
)

// newSimNode attaches a container to a simulated network.
func newSimNode(t *testing.T, net *netsim.Net, id transport.NodeID, opts ...NodeOption) *Node {
	t.Helper()
	ep, err := net.Node(id)
	if err != nil {
		t.Fatal(err)
	}
	all := append([]NodeOption{
		WithDatagram(ep),
		WithAnnouncePeriod(25 * time.Millisecond),
		WithARQ(protocol.WithTimeout(8*time.Millisecond), protocol.WithMaxRetries(12)),
		WithFileTransfer(filetransfer.WithQueryWindow(15 * time.Millisecond)),
	}, opts...)
	n, err := NewNode(all...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = n.Close() })
	return n
}

func TestEventGuaranteedDeliveryUnderLoss(t *testing.T) {
	// 20% loss: best-effort traffic suffers, but every event arrives
	// (§4.2's guarantee via application-level ack/resend).
	net := netsim.New(netsim.Config{Loss: 0.2, Seed: 99, Latency: time.Millisecond})
	defer net.Close()
	pub := newSimNode(t, net, "uav")
	sub := newSimNode(t, net, "gs")
	syncNodes(t, pub, sub)

	p, err := pub.Events().Offer("wp.reached", "mc", presentation.Uint32(), qos.EventQoS{})
	if err != nil {
		t.Fatal(err)
	}
	pub.AnnounceNow()
	waitUntil(t, 3*time.Second, "event record", func() bool {
		return sub.Directory().ProviderCount(naming.KindEvent, "wp.reached") == 1
	})
	var received atomic.Int64
	if _, err := sub.Events().Subscribe("wp.reached", presentation.Uint32(), qos.EventQoS{},
		func(any, transport.NodeID) { received.Add(1) }); err != nil {
		t.Fatal(err)
	}
	waitUntil(t, 3*time.Second, "subscriber registration", func() bool {
		return len(p.Subscribers()) == 1
	})

	const n = 40
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	for i := 0; i < n; i++ {
		if err := p.Publish(ctx, uint32(i)); err != nil {
			t.Fatalf("Publish %d: %v", i, err)
		}
	}
	waitUntil(t, 10*time.Second, "all events delivered", func() bool {
		return received.Load() == n
	})
	// The delivery guarantee must have cost retransmissions at 20% loss.
	if retr := pubARQRetransmits(pub); retr == 0 {
		t.Error("expected ARQ retransmissions under loss")
	}
}

func pubARQRetransmits(n *Node) uint64 { return n.arq.Stats().Retransmits }

func TestRPCFailoverOnNodeDeath(t *testing.T) {
	// Two redundant providers; the one serving calls dies mid-mission and
	// the middleware redirects (§4.3, E7).
	net := netsim.New(netsim.Config{Latency: time.Millisecond, Seed: 5})
	defer net.Close()
	primary := newSimNode(t, net, "primary", WithFailureDeadline(150*time.Millisecond))
	backup := newSimNode(t, net, "backup", WithFailureDeadline(150*time.Millisecond))
	client := newSimNode(t, net, "client", WithFailureDeadline(150*time.Millisecond))

	handler := func(node string) func(any) (any, error) {
		return func(any) (any, error) { return node, nil }
	}
	retT := presentation.String_()
	if err := primary.RPC().Register("nav.compute", "nav", nil, retT, qos.CallQoS{}, handler("primary")); err != nil {
		t.Fatal(err)
	}
	if err := backup.RPC().Register("nav.compute", "nav", nil, retT, qos.CallQoS{}, handler("backup")); err != nil {
		t.Fatal(err)
	}
	syncNodes(t, primary, backup, client)
	waitUntil(t, 3*time.Second, "both providers visible", func() bool {
		return client.Directory().ProviderCount(naming.KindFunction, "nav.compute") == 2
	})

	ctx := context.Background()
	q := qos.CallQoS{Deadline: 3 * time.Second}
	if _, err := client.RPC().Call(ctx, "nav.compute", nil, nil, retT, q); err != nil {
		t.Fatalf("pre-failure call: %v", err)
	}

	// Kill the primary without a goodbye (simulated crash).
	net.Partition("primary", "client")
	net.Partition("primary", "backup")

	waitUntil(t, 5*time.Second, "failure detection", func() bool {
		return client.Directory().ProviderCount(naming.KindFunction, "nav.compute") == 1
	})

	// Calls keep succeeding, now served by the backup (degraded mode).
	for i := 0; i < 5; i++ {
		got, err := client.RPC().Call(ctx, "nav.compute", nil, nil, retT, q)
		if err != nil {
			t.Fatalf("post-failure call %d: %v", i, err)
		}
		if got != "backup" {
			t.Fatalf("call %d served by %v, want backup", i, got)
		}
	}
}

func TestRPCStaticBindingSurvivesUntilPinDies(t *testing.T) {
	net := netsim.New(netsim.Config{Latency: time.Millisecond, Seed: 6})
	defer net.Close()
	a := newSimNode(t, net, "a", WithFailureDeadline(150*time.Millisecond))
	b := newSimNode(t, net, "b", WithFailureDeadline(150*time.Millisecond))
	client := newSimNode(t, net, "client", WithFailureDeadline(150*time.Millisecond))

	retT := presentation.String_()
	for _, n := range []*Node{a, b} {
		id := string(n.ID())
		if err := n.RPC().Register("fn", "svc", nil, retT, qos.CallQoS{},
			func(any) (any, error) { return id, nil }); err != nil {
			t.Fatal(err)
		}
	}
	syncNodes(t, a, b, client)
	waitUntil(t, 3*time.Second, "providers", func() bool {
		return client.Directory().ProviderCount(naming.KindFunction, "fn") == 2
	})

	q := qos.CallQoS{Binding: qos.BindStatic, Deadline: 2 * time.Second}
	ctx := context.Background()
	first, err := client.RPC().Call(ctx, "fn", nil, nil, retT, q)
	if err != nil {
		t.Fatal(err)
	}
	// Static binding: 10 more calls all hit the same provider.
	for i := 0; i < 10; i++ {
		got, err := client.RPC().Call(ctx, "fn", nil, nil, retT, q)
		if err != nil {
			t.Fatal(err)
		}
		if got != first {
			t.Fatalf("static binding moved from %v to %v", first, got)
		}
	}
	// Kill the pinned provider; calls fail over to the survivor.
	pinned := transport.NodeID(first.(string))
	net.Partition(pinned, "client")
	net.Partition(pinned, "a")
	net.Partition(pinned, "b")
	waitUntil(t, 5*time.Second, "pin detected dead", func() bool {
		return client.Directory().ProviderCount(naming.KindFunction, "fn") == 1
	})
	got, err := client.RPC().Call(ctx, "fn", nil, nil, retT, q)
	if err != nil {
		t.Fatalf("failover call: %v", err)
	}
	if got == first {
		t.Fatal("call served by dead pin")
	}
}

func TestFileTransferRecoversFromLoss(t *testing.T) {
	// 15% loss: chunks vanish, the completion phase NACKs them back
	// (§4.4, E4 foundation).
	net := netsim.New(netsim.Config{Loss: 0.15, Seed: 21, Latency: time.Millisecond})
	defer net.Close()
	pub := newSimNode(t, net, "camera")
	sub := newSimNode(t, net, "storage")
	syncNodes(t, pub, sub)

	data := make([]byte, 256*1024)
	for i := range data {
		data[i] = byte(i*31 + i>>8)
	}
	offer, err := pub.Files().Offer("photo.7", "camera", data, qos.TransferQoS{})
	if err != nil {
		t.Fatal(err)
	}
	pub.AnnounceNow()
	waitUntil(t, 3*time.Second, "file record", func() bool {
		return sub.Directory().ProviderCount(naming.KindFile, "photo.7") == 1
	})

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	got, _, err := sub.Files().Fetch(ctx, "photo.7", filetransfer.FetchOptions{})
	if err != nil {
		t.Fatalf("Fetch under loss: %v", err)
	}
	if len(got) != len(data) {
		t.Fatalf("size %d vs %d", len(got), len(data))
	}
	for i := range data {
		if got[i] != data[i] {
			t.Fatalf("corruption at %d", i)
		}
	}
	if offer.Rounds() < 2 {
		t.Errorf("transfer at 15%% loss completed in %d rounds; NACK path untested", offer.Rounds())
	}
}

func TestFileTransferLateJoinerResumes(t *testing.T) {
	// A second receiver subscribes mid-transfer and still completes
	// (§4.4: "a new service can subscribe ... and resume at the current
	// point").
	net := netsim.New(netsim.Config{Latency: time.Millisecond, Seed: 33})
	defer net.Close()
	pub := newSimNode(t, net, "camera",
		WithFileTransfer(filetransfer.WithQueryWindow(30*time.Millisecond)))
	early := newSimNode(t, net, "early")
	late := newSimNode(t, net, "late")
	syncNodes(t, pub, early, late)

	data := make([]byte, 512*1024)
	for i := range data {
		data[i] = byte(i * 13)
	}
	if _, err := pub.Files().Offer("map.1", "camera", data, qos.TransferQoS{}); err != nil {
		t.Fatal(err)
	}
	pub.AnnounceNow()
	for _, n := range []*Node{early, late} {
		n := n
		waitUntil(t, 3*time.Second, "file record", func() bool {
			return n.Directory().ProviderCount(naming.KindFile, "map.1") == 1
		})
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	type result struct {
		data []byte
		err  error
	}
	earlyCh := make(chan result, 1)
	go func() {
		d, _, err := early.Files().Fetch(ctx, "map.1", filetransfer.FetchOptions{})
		earlyCh <- result{data: d, err: err}
	}()
	// Join mid-transfer.
	time.Sleep(20 * time.Millisecond)
	lateCh := make(chan result, 1)
	go func() {
		d, _, err := late.Files().Fetch(ctx, "map.1", filetransfer.FetchOptions{})
		lateCh <- result{data: d, err: err}
	}()

	for name, ch := range map[string]chan result{"early": earlyCh, "late": lateCh} {
		select {
		case res := <-ch:
			if res.err != nil {
				t.Fatalf("%s: %v", name, res.err)
			}
			if len(res.data) != len(data) {
				t.Fatalf("%s: size %d", name, len(res.data))
			}
		case <-time.After(30 * time.Second):
			t.Fatalf("%s: timeout", name)
		}
	}
}

func TestMulticastVariableFanoutOneWirePacket(t *testing.T) {
	// E3's core property through the full middleware stack: one published
	// sample = one wire packet regardless of subscriber count.
	net := netsim.New(netsim.Config{Seed: 2})
	defer net.Close()
	pub := newSimNode(t, net, "uav")
	subs := make([]*Node, 4)
	for i := range subs {
		subs[i] = newSimNode(t, net, transport.NodeID("gs"+string(rune('0'+i))))
	}
	all := append([]*Node{pub}, subs...)
	syncNodes(t, all...)

	p, err := pub.Variables().Offer("pos", "gps", gpsType, qos.VariableQoS{})
	if err != nil {
		t.Fatal(err)
	}
	pub.AnnounceNow()
	var listeners []*variables.Subscription
	for _, sn := range subs {
		s, err := sn.Variables().Subscribe("pos", gpsType, variables.SubscribeOptions{})
		if err != nil {
			t.Fatal(err)
		}
		listeners = append(listeners, s)
	}
	// Let group membership settle, then measure a quiet window.
	time.Sleep(50 * time.Millisecond)
	net.ResetWireStats()
	if err := p.Publish(gpsValue(41.0)); err != nil {
		t.Fatal(err)
	}
	waitUntil(t, 3*time.Second, "all subscribers have the sample", func() bool {
		for _, s := range listeners {
			if _, _, err := s.Get(); err != nil {
				return false
			}
		}
		return true
	})
	packets, _, _ := net.WireStats()
	// The publish itself is 1 wire packet; concurrent announces may add a
	// few, but the count must be far below one-per-subscriber semantics
	// with headroom (4 subscribers -> must be << 4 sample packets). We
	// assert the sample-specific accounting at the transport level in
	// transport tests; here just sanity-bound total traffic.
	if packets == 0 {
		t.Fatal("no wire traffic recorded")
	}
}
