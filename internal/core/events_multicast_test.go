package core

import (
	"context"
	"sync"
	"testing"
	"time"

	"uavmw/internal/egress"
	"uavmw/internal/naming"
	"uavmw/internal/netsim"
	"uavmw/internal/presentation"
	"uavmw/internal/qos"
	"uavmw/internal/transport"
)

var mcastEventQoS = qos.EventQoS{Delivery: qos.DeliverMulticast}

// TestMulticastEventNackRepairUnderLoss is the E3 reliability criterion:
// group-addressed occurrences dropped by the network are detected as
// sequence gaps and recovered through NACK-triggered unicast
// retransmissions from the publisher's replay buffer.
func TestMulticastEventNackRepairUnderLoss(t *testing.T) {
	net := netsim.New(netsim.Config{Loss: 0.15, Seed: 77, Latency: time.Millisecond})
	defer net.Close()
	// Coalescing off: this test's subject is per-occurrence loss and
	// repair, so each occurrence must ride its own datagram for the
	// seeded loss pattern to hit individual sequence numbers.
	pub := newSimNode(t, net, "uav", WithEgress(egress.Config{CoalesceMax: -1}))
	sub := newSimNode(t, net, "gs")
	syncNodes(t, pub, sub)

	p, err := pub.Events().Offer("telemetry.burst", "mc", presentation.Uint32(), mcastEventQoS)
	if err != nil {
		t.Fatal(err)
	}
	pub.AnnounceNow()
	waitUntil(t, 3*time.Second, "event record", func() bool {
		return sub.Directory().ProviderCount(naming.KindEvent, "telemetry.burst") == 1
	})

	var (
		mu  sync.Mutex
		got = make(map[uint32]bool)
	)
	s, err := sub.Events().Subscribe("telemetry.burst", presentation.Uint32(), mcastEventQoS,
		func(v any, _ transport.NodeID) {
			mu.Lock()
			got[v.(uint32)] = true
			mu.Unlock()
		})
	if err != nil {
		t.Fatal(err)
	}
	waitUntil(t, 3*time.Second, "subscriber registration", func() bool {
		return len(p.Subscribers()) == 1
	})

	const n = 40
	ctx := context.Background()
	for i := 1; i <= n; i++ {
		if err := p.Publish(ctx, uint32(i)); err != nil {
			t.Fatalf("Publish %d: %v", i, err)
		}
	}
	// Tail losses are only detectable when a later occurrence arrives;
	// keep a trickle of follow-on occurrences flowing until every one of
	// the first n is recovered.
	deadline := time.Now().Add(20 * time.Second)
	flush := n
	for {
		mu.Lock()
		have := 0
		for i := 1; i <= n; i++ {
			if got[uint32(i)] {
				have++
			}
		}
		mu.Unlock()
		if have == n {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("only %d of %d occurrences recovered", have, n)
		}
		flush++
		if err := p.Publish(ctx, uint32(flush)); err != nil {
			t.Fatalf("flush publish: %v", err)
		}
		time.Sleep(10 * time.Millisecond)
	}

	// At 15% loss the recovery must actually have exercised the repair
	// path, not gotten lucky.
	detected, repaired := s.Gaps()
	if detected == 0 || repaired == 0 {
		t.Errorf("gaps detected/repaired = %d/%d, want both > 0", detected, repaired)
	}
	if p.Repairs() == 0 {
		t.Error("publisher performed no NACK repairs")
	}
}

// TestMulticastEventFanoutWireCost verifies the §4.1 bandwidth property on
// the event primitive: one occurrence is one wire packet however many nodes
// subscribe.
func TestMulticastEventFanoutWireCost(t *testing.T) {
	net := netsim.New(netsim.Config{Seed: 3})
	defer net.Close()
	pub := newSimNode(t, net, "uav")
	const nSubs = 4
	subs := make([]*Node, nSubs)
	for i := range subs {
		subs[i] = newSimNode(t, net, transport.NodeID("gs"+string(rune('0'+i))))
	}
	syncNodes(t, append([]*Node{pub}, subs...)...)

	p, err := pub.Events().Offer("alarm", "mc", presentation.Uint32(), mcastEventQoS)
	if err != nil {
		t.Fatal(err)
	}
	pub.AnnounceNow()
	counts := make([]*countingHandler, nSubs)
	for i, sn := range subs {
		sn := sn
		waitUntil(t, 3*time.Second, "event record", func() bool {
			return sn.Directory().ProviderCount(naming.KindEvent, "alarm") == 1
		})
		h := &countingHandler{}
		counts[i] = h
		if _, err := sn.Events().Subscribe("alarm", presentation.Uint32(), mcastEventQoS, h.handle); err != nil {
			t.Fatal(err)
		}
	}
	waitUntil(t, 3*time.Second, "all registered", func() bool {
		return len(p.Subscribers()) == nSubs
	})

	time.Sleep(50 * time.Millisecond) // quiet window
	net.ResetWireStats()
	const occurrences = 20
	ctx := context.Background()
	for i := 0; i < occurrences; i++ {
		if err := p.Publish(ctx, uint32(i)); err != nil {
			t.Fatal(err)
		}
	}
	waitUntil(t, 5*time.Second, "all delivered", func() bool {
		for _, h := range counts {
			if h.count() < occurrences {
				return false
			}
		}
		return true
	})
	packets, _, _ := net.WireStats()
	// Unicast ARQ fan-out would cost >= occurrences*nSubs*2 packets
	// (data + ack). Group addressing must stay well below that;
	// concurrent announce chatter adds a handful.
	if packets >= occurrences*nSubs {
		t.Errorf("wire packets = %d for %d occurrences to %d subscribers; group send is not saving bandwidth",
			packets, occurrences, nSubs)
	}
}

type countingHandler struct {
	mu sync.Mutex
	n  int
}

func (h *countingHandler) handle(any, transport.NodeID) {
	h.mu.Lock()
	h.n++
	h.mu.Unlock()
}

func (h *countingHandler) count() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.n
}
