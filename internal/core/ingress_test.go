package core

import (
	"sync"
	"testing"
	"time"

	"uavmw/internal/clock"
	"uavmw/internal/ingress"
	"uavmw/internal/metrics"
	"uavmw/internal/netsim"
	"uavmw/internal/presentation"
	"uavmw/internal/protocol"
	"uavmw/internal/qos"
	"uavmw/internal/transport"
	"uavmw/internal/variables"
)

// TestIngressPerSourceOrderingVirtual is the pipeline's ordering proof at
// the container level: two sources interleave publishes into a receiver
// running four ingress shards under virtual time, and each source's
// samples must arrive at the application in publish order — the per-source
// FIFO guarantee that keeps ARQ, dedup and reorder filters sound however
// many shards drain in parallel. Runs in -short so the -race -shuffle CI
// lane exercises it.
func TestIngressPerSourceOrderingVirtual(t *testing.T) {
	v := clock.NewVirtual()
	var failure string
	v.Run(func() {
		net := netsim.New(netsim.Config{Seed: 7, Latency: time.Millisecond, Clock: v})
		defer net.Close()
		mk := func(id transport.NodeID, opts ...NodeOption) *Node {
			ep, err := net.Node(id)
			if err != nil {
				t.Fatal(err)
			}
			n, err := NewNode(append([]NodeOption{
				WithClock(v),
				WithDatagram(ep),
				WithAnnouncePeriod(20 * time.Millisecond),
			}, opts...)...)
			if err != nil {
				t.Fatal(err)
			}
			return n
		}
		srcA := mk("uav-alpha")
		defer func() { _ = srcA.Close() }()
		srcB := mk("uav-bravo")
		defer func() { _ = srcB.Close() }()
		gs := mk("gs", WithIngressShards(4))
		defer func() { _ = gs.Close() }()

		typ := presentation.Uint32()
		pubA, err := srcA.Variables().Offer("ord.alpha", "t", typ, qos.VariableQoS{Validity: time.Hour})
		if err != nil {
			t.Fatal(err)
		}
		pubB, err := srcB.Variables().Offer("ord.bravo", "t", typ, qos.VariableQoS{Validity: time.Hour})
		if err != nil {
			t.Fatal(err)
		}

		var mu sync.Mutex
		got := map[string][]uint32{}
		record := func(name string) func(v any, _ time.Time) {
			return func(v any, _ time.Time) {
				mu.Lock()
				got[name] = append(got[name], v.(uint32))
				mu.Unlock()
			}
		}
		for name, n := range map[string]*Node{"ord.alpha": gs, "ord.bravo": gs} {
			sub, err := n.Variables().Subscribe(name, typ, variables.SubscribeOptions{OnSample: record(name)})
			if err != nil {
				t.Fatal(err)
			}
			defer sub.Close()
		}

		// Warm up until both flows deliver: subscriptions propagate by
		// discovery, so publish until the first sample of each lands.
		deadline := v.Now().Add(10 * time.Second)
		for {
			mu.Lock()
			ready := len(got["ord.alpha"]) > 0 && len(got["ord.bravo"]) > 0
			mu.Unlock()
			if ready {
				break
			}
			if v.Now().After(deadline) {
				failure = "subscriptions never delivered a first sample"
				return
			}
			_ = pubA.Publish(uint32(0))
			_ = pubB.Publish(uint32(0))
			v.Sleep(5 * time.Millisecond)
		}

		const samples = 150
		for i := 1; i <= samples; i++ {
			_ = pubA.Publish(uint32(i))
			_ = pubB.Publish(uint32(i))
			v.Sleep(2 * time.Millisecond)
		}
		deadline = v.Now().Add(5 * time.Second)
		last := func(name string) uint32 {
			mu.Lock()
			defer mu.Unlock()
			s := got[name]
			if len(s) == 0 {
				return 0
			}
			return s[len(s)-1]
		}
		for (last("ord.alpha") < samples || last("ord.bravo") < samples) && v.Now().Before(deadline) {
			v.Sleep(5 * time.Millisecond)
		}

		mu.Lock()
		defer mu.Unlock()
		for name, seq := range got {
			for i := 1; i < len(seq); i++ {
				if seq[i] < seq[i-1] {
					t.Fatalf("%s: sample %d (value %d) arrived after value %d — per-source FIFO violated",
						name, i, seq[i], seq[i-1])
				}
			}
			if seq[len(seq)-1] != samples {
				t.Fatalf("%s: last sample %d, want %d", name, seq[len(seq)-1], samples)
			}
		}
	})
	if failure != "" {
		t.Fatal(failure)
	}
}

// nestBatch wraps raw frames into an MTBatch datagram, depth times.
func nestBatch(t *testing.T, raw []byte, depth int) []byte {
	t.Helper()
	for i := 0; i < depth; i++ {
		var err error
		raw, err = protocol.AppendBatch(nil, [][]byte{raw}, qos.PriorityHigh)
		if err != nil {
			t.Fatal(err)
		}
	}
	return raw
}

// TestNestedBatchDepthRejected: the dispatcher unpacks one level of
// legitimate nesting (a coalesced ack batch riding an egress batch) but
// refuses deeper recursion, counting the drop under the protocol-violation
// taxonomy instead of recursing into attacker-controlled depth.
func TestNestedBatchDepthRejected(t *testing.T) {
	bus := transport.NewBus()
	n := newBusNode(t, bus, "solo")

	inner, err := protocol.EncodeFrame(&protocol.Frame{Type: protocol.MTFileCancel, Seq: 1, Priority: qos.PriorityHigh})
	if err != nil {
		t.Fatal(err)
	}
	nested := func() uint64 {
		return n.metrics.SumCounters("core", "errors", metrics.L("code", "batch_nested"))
	}

	// Depth 2 (batch in batch) is the deepest shape this stack produces
	// and must pass.
	n.handleFrameBytes("peer", nestBatch(t, inner, 2))
	if got := nested(); got != 0 {
		t.Fatalf("legitimate batch-in-batch counted as nested violation (%d)", got)
	}
	// Depth 3 cannot occur and is rejected at the third level.
	n.handleFrameBytes("peer", nestBatch(t, inner, 3))
	if got := nested(); got != 1 {
		t.Fatalf("over-nested batch: violation count %d, want 1", got)
	}
}

// TestAckBatchCoalescing: acks generated within one ingress drain batch for
// the same peer leave as a single MTBatch of MTAck frames — one egress
// enqueue and one wire datagram for a burst that previously cost one
// datagram each.
func TestAckBatchCoalescing(t *testing.T) {
	bus := transport.NewBus()
	n := newBusNode(t, bus, "recv")

	peer, err := bus.Endpoint("peer")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = peer.Close() })
	var mu sync.Mutex
	var batches [][]uint64 // ack seqs per arriving datagram
	peer.SetHandler(func(pkt transport.Packet) {
		f, err := protocol.DecodeFrame(pkt.Payload)
		if err != nil {
			t.Errorf("peer received undecodable frame: %v", err)
			return
		}
		var seqs []uint64
		switch f.Type {
		case protocol.MTAck:
			seqs = []uint64{f.Seq}
		case protocol.MTBatch:
			subs, err := protocol.DecodeBatch(f.Payload)
			if err != nil {
				t.Errorf("peer received undecodable batch: %v", err)
				return
			}
			for _, sub := range subs {
				sf, err := protocol.DecodeFrame(sub)
				if err != nil || sf.Type != protocol.MTAck {
					t.Errorf("unexpected inner frame (type %v, err %v)", sf, err)
					return
				}
				seqs = append(seqs, sf.Seq)
			}
		default:
			return // discovery chatter is not under test
		}
		mu.Lock()
		batches = append(batches, seqs)
		mu.Unlock()
	})

	// Hand the dispatcher one pipeline drain batch of four ack-required
	// frames from the same source, the way a shard worker would after a
	// burst: the acks must coalesce.
	var batch []ingress.Packet
	for seq := uint64(1); seq <= 4; seq++ {
		raw, err := protocol.EncodeFrame(&protocol.Frame{
			Type:     protocol.MTFileCancel,
			Flags:    protocol.FlagAckRequired,
			Seq:      seq,
			Priority: qos.PriorityHigh,
		})
		if err != nil {
			t.Fatal(err)
		}
		batch = append(batch, ingress.Packet{Bearer: DefaultBearer, From: "peer", Payload: raw})
	}
	n.deliverBatch(n.ingress.ShardOf("peer"), batch)

	waitUntil(t, 2*time.Second, "coalesced ack batch", func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(batches) > 0
	})
	mu.Lock()
	defer mu.Unlock()
	if len(batches) != 1 {
		t.Fatalf("acks arrived in %d datagrams, want 1 coalesced batch: %v", len(batches), batches)
	}
	want := []uint64{1, 2, 3, 4}
	if len(batches[0]) != len(want) {
		t.Fatalf("coalesced batch has seqs %v, want %v", batches[0], want)
	}
	for i, seq := range batches[0] {
		if seq != want[i] {
			t.Fatalf("coalesced batch has seqs %v, want %v", batches[0], want)
		}
	}
}
