package core

import (
	"context"
	"errors"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"uavmw/internal/naming"
	"uavmw/internal/netsim"
	"uavmw/internal/presentation"
	"uavmw/internal/protocol"
	"uavmw/internal/qos"
	"uavmw/internal/transport"
)

// wifiProfile/radioProfile model the E14 bearer pair: a fat short-range
// low-latency pipe and a slow long-range robust modem.
var (
	wifiProfile  = qos.BearerProfile{RateBPS: 125_000, Latency: 5 * time.Millisecond, Robustness: 1}
	radioProfile = qos.BearerProfile{RateBPS: 31_250, Latency: 40 * time.Millisecond, Robustness: 10}
)

// newTwoBearerNode attaches id to both simulated networks and builds a
// node with wifi + radio bearers.
func newTwoBearerNode(t *testing.T, wifi, radio *netsim.Net, id transport.NodeID, opts ...NodeOption) *Node {
	t.Helper()
	wep, err := wifi.Node(id)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := radio.Node(id)
	if err != nil {
		t.Fatal(err)
	}
	all := append([]NodeOption{
		WithBearer("wifi", wep, wifiProfile),
		WithBearer("radio", rep, radioProfile),
		WithAnnouncePeriod(25 * time.Millisecond),
		WithFailureDeadline(100 * time.Millisecond),
		WithARQ(protocol.WithTimeout(20*time.Millisecond), protocol.WithMaxRetries(10)),
	}, opts...)
	n, err := NewNode(all...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = n.Close() })
	return n
}

func TestQoSClassCountPinned(t *testing.T) {
	if qosNumClasses != qos.NumLevels() {
		t.Fatalf("qosNumClasses = %d, qos.NumLevels() = %d", qosNumClasses, qos.NumLevels())
	}
}

func TestBearerConfigValidation(t *testing.T) {
	bus := transport.NewBus()
	a, err := bus.Endpoint("a")
	if err != nil {
		t.Fatal(err)
	}
	b, err := bus.Endpoint("b")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewNode(); !errors.Is(err, ErrNoDatagram) {
		t.Errorf("no bearers: err = %v, want ErrNoDatagram", err)
	}
	if _, err := NewNode(WithBearer("x", a, qos.BearerProfile{}), WithBearer("x", a, qos.BearerProfile{})); !errors.Is(err, ErrBadBearer) {
		t.Errorf("duplicate names: err = %v, want ErrBadBearer", err)
	}
	if _, err := NewNode(WithBearer("x", a, qos.BearerProfile{}), WithBearer("y", b, qos.BearerProfile{})); !errors.Is(err, ErrBadBearer) {
		t.Errorf("mismatched node ids: err = %v, want ErrBadBearer", err)
	}
	if _, err := NewNode(WithBearer("", a, qos.BearerProfile{})); !errors.Is(err, ErrBadBearer) {
		t.Errorf("empty name: err = %v, want ErrBadBearer", err)
	}
}

// TestBearerRecordsAdvertised pins discovery-carried reachability: each
// node's offer includes one KindBearer record per datalink, visible in
// peers' directories.
func TestBearerRecordsAdvertised(t *testing.T) {
	wifi := netsim.New(netsim.Config{Seed: 1})
	defer wifi.Close()
	radio := netsim.New(netsim.Config{Seed: 2})
	defer radio.Close()
	uav := newTwoBearerNode(t, wifi, radio, "uav")
	gs := newTwoBearerNode(t, wifi, radio, "gs")

	waitUntil(t, 5*time.Second, "bearer records discovered", func() bool {
		return gs.Directory().ProviderCount(naming.KindBearer, "wifi") >= 2 &&
			gs.Directory().ProviderCount(naming.KindBearer, "radio") >= 2
	})
	if !uav.peerAdvertises("gs", "radio") || !uav.peerAdvertises("gs", "wifi") {
		t.Error("uav reach cache missing gs bearers")
	}
	names := uav.Bearers()
	if len(names) != 2 || names[0] != "wifi" || names[1] != "radio" {
		t.Errorf("Bearers() = %v", names)
	}
}

// TestCriticalPinsToRobustBearer pins the default policy: with both links
// healthy, critical events ride the robust radio while bulk-class frames
// ride the fat wifi pipe.
func TestCriticalPinsToRobustBearer(t *testing.T) {
	wifi := netsim.New(netsim.Config{Seed: 1})
	defer wifi.Close()
	radio := netsim.New(netsim.Config{Seed: 2})
	defer radio.Close()
	uav := newTwoBearerNode(t, wifi, radio, "uav")
	newTwoBearerNode(t, wifi, radio, "gs")
	waitUntil(t, 5*time.Second, "peers discovered", func() bool {
		return len(uav.Peers()) == 1
	})
	if got := uav.selectBearer("gs", qos.PriorityCritical); got != "radio" {
		t.Errorf("critical bearer = %q, want radio", got)
	}
	if got := uav.selectBearer("gs", qos.PriorityBulk); got != "wifi" {
		t.Errorf("bulk bearer = %q, want wifi", got)
	}
	if got := uav.selectBearer("gs", qos.PriorityNormal); got != "wifi" {
		t.Errorf("normal bearer = %q, want wifi (lowest latency)", got)
	}
}

// TestEventsSurviveBearerBlackout is the core failover property: events
// bound to a bearer that blacks out mid-stream keep arriving — ARQ
// retransmissions re-select per the failover order, and the link monitor
// declares the bearer down within the failure deadline.
func TestEventsSurviveBearerBlackout(t *testing.T) {
	wifi := netsim.New(netsim.Config{Seed: 1, Latency: time.Millisecond})
	defer wifi.Close()
	radio := netsim.New(netsim.Config{Seed: 2, Latency: 5 * time.Millisecond})
	defer radio.Close()
	// Pin every class to wifi-first so the blackout forces a real failover.
	policy := qos.LinkPolicy{Affinity: map[qos.Priority][]string{
		qos.PriorityCritical: {"wifi", "radio"},
		qos.PriorityHigh:     {"wifi", "radio"},
	}}
	uav := newTwoBearerNode(t, wifi, radio, "uav", WithLinkPolicy(policy))
	gs := newTwoBearerNode(t, wifi, radio, "gs", WithLinkPolicy(policy))

	alarmType := presentation.Uint32()
	alarmQoS := qos.EventQoS{Priority: qos.PriorityCritical}
	pub, err := uav.Events().Offer("alarm", "test", alarmType, alarmQoS)
	if err != nil {
		t.Fatal(err)
	}
	var got atomic.Uint32
	waitUntil(t, 5*time.Second, "event discovered", func() bool {
		return gs.Directory().ProviderCount(naming.KindEvent, "alarm") >= 1
	})
	if _, err := gs.Events().Subscribe("alarm", alarmType, alarmQoS,
		func(v any, _ transport.NodeID) { got.Store(v.(uint32)) }); err != nil {
		t.Fatal(err)
	}
	waitUntil(t, 5*time.Second, "subscriber registered", func() bool {
		return len(pub.Subscribers()) == 1
	})

	publish := func(seq uint32) {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := pub.Publish(ctx, seq); err != nil {
			t.Fatalf("publish %d: %v", seq, err)
		}
	}
	publish(1)
	waitUntil(t, 2*time.Second, "pre-blackout alarm", func() bool { return got.Load() == 1 })

	// Blackout wifi in both directions. The very next publish goes out on
	// the dead link, is retransmitted, and must complete over radio within
	// the ARQ budget — Publish returning nil is the delivery proof.
	wifi.Partition("uav", "gs")
	start := time.Now()
	publish(2)
	waitUntil(t, 2*time.Second, "post-blackout alarm", func() bool { return got.Load() == 2 })
	elapsed := time.Since(start)
	if elapsed > 2*time.Second {
		t.Errorf("failover took %v", elapsed)
	}

	// The monitor must declare wifi down within ~a failure deadline (plus
	// sweep granularity), while radio stays healthy.
	waitUntil(t, 3*time.Second, "wifi declared down", func() bool {
		for _, ls := range uav.LinkStats() {
			if ls.Name == "wifi" {
				return !ls.Healthy
			}
		}
		return false
	})
	for _, ls := range uav.LinkStats() {
		if ls.Name == "radio" && !ls.Healthy {
			t.Error("radio should remain healthy through the wifi blackout")
		}
	}
	// And fresh critical selection now avoids wifi.
	if got := uav.selectBearer("gs", qos.PriorityCritical); got != "radio" {
		t.Errorf("critical bearer after blackout = %q, want radio", got)
	}

	// Heal: probes keep flowing on the dead bearer, so recovery is
	// detected and traffic fails back to the affinity-preferred wifi.
	wifi.Heal("uav", "gs")
	waitUntil(t, 5*time.Second, "wifi recovers", func() bool {
		return uav.selectBearer("gs", qos.PriorityCritical) == "wifi"
	})
	publish(3)
	waitUntil(t, 2*time.Second, "post-heal alarm", func() bool { return got.Load() == 3 })
}

// countingTransport wraps a Transport and counts Close calls.
type countingTransport struct {
	transport.Transport
	closes atomic.Int32
}

func (c *countingTransport) Close() error {
	c.closes.Add(1)
	return c.Transport.Close()
}

// TestMultiBearerCloseClosesEveryTransportOnce pins shutdown: Close with
// several bearers closes every transport promptly and exactly once, twice
// Close stays idempotent, and the node's goroutines wind down (checked
// under -race by the harness).
func TestMultiBearerCloseClosesEveryTransportOnce(t *testing.T) {
	before := runtime.NumGoroutine()
	// Three separate buses: one per bearer, same node id on each.
	eps := make([]*countingTransport, 3)
	var opts []NodeOption
	for i, name := range []string{"b0", "b1", "b2"} {
		ep, err := transport.NewBus().Endpoint("n")
		if err != nil {
			t.Fatal(err)
		}
		eps[i] = &countingTransport{Transport: ep}
		opts = append(opts, WithBearer(name, eps[i], qos.BearerProfile{}))
	}
	opts = append(opts, WithAnnouncePeriod(10*time.Millisecond))
	n, err := NewNode(opts...)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- n.Close() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Close: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Close did not return promptly")
	}
	if err := n.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	for i, ep := range eps {
		if c := ep.closes.Load(); c != 1 {
			t.Errorf("bearer %d closed %d times, want exactly 1", i, c)
		}
	}
	// Goroutines must wind down to near the starting count (allow slack
	// for runtime background goroutines).
	waitUntil(t, 5*time.Second, "goroutines drained", func() bool {
		return runtime.NumGoroutine() <= before+3
	})
}
