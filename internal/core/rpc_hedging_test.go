package core

import (
	"context"
	"errors"
	"testing"
	"time"

	"uavmw/internal/naming"
	"uavmw/internal/netsim"
	"uavmw/internal/presentation"
	"uavmw/internal/qos"
	"uavmw/internal/rpc"
)

// TestRPCHedgedFailoverUnderLoss kills the pinned provider mid-stream on a
// 15% lossy network; a hedged call must still complete within its QoS
// deadline via the redundant provider (§4.3 bounded-latency redirection).
func TestRPCHedgedFailoverUnderLoss(t *testing.T) {
	net := netsim.New(netsim.Config{Loss: 0.15, Seed: 21, Latency: 500 * time.Microsecond})
	defer net.Close()
	provA := newSimNode(t, net, "a-prov")
	provB := newSimNode(t, net, "b-prov")
	client := newSimNode(t, net, "client")
	syncNodes(t, provA, provB, client)

	retT := presentation.String_()
	for _, n := range []*Node{provA, provB} {
		id := string(n.ID())
		if err := n.RPC().Register("nav.fn", "nav", nil, retT, qos.CallQoS{},
			func(any) (any, error) { return id, nil }); err != nil {
			t.Fatal(err)
		}
		n.AnnounceNow()
	}
	waitUntil(t, 3*time.Second, "both providers discovered", func() bool {
		return client.Directory().ProviderCount(naming.KindFunction, "nav.fn") == 2
	})

	ctx := context.Background()
	q := qos.CallQoS{
		Binding:    qos.BindStatic,
		Deadline:   2 * time.Second,
		HedgeAfter: 0.2,
	}
	// Warm the static pin (lowest node id: a-prov) with a few calls.
	var pinned string
	for i := 0; i < 3; i++ {
		got, err := client.RPC().Call(ctx, "nav.fn", nil, nil, retT, q)
		if err != nil {
			t.Fatalf("warm call %d: %v", i, err)
		}
		pinned = got.(string)
	}
	if pinned != "a-prov" {
		t.Fatalf("pin landed on %q, want a-prov", pinned)
	}

	// Kill the pinned provider silently, mid-stream.
	net.Partition("a-prov", "client")
	net.Partition("a-prov", "b-prov")

	start := time.Now()
	got, err := client.RPC().Call(ctx, "nav.fn", nil, nil, retT, q)
	elapsed := time.Since(start)
	if err != nil {
		t.Fatalf("call after provider death: %v (elapsed %v)", err, elapsed)
	}
	if got != "b-prov" {
		t.Errorf("served by %v, want the redundant provider", got)
	}
	if elapsed > q.Deadline {
		t.Errorf("failover took %v, beyond the %v deadline", elapsed, q.Deadline)
	}
}

// TestRPCBusyShedFailsOver occupies a provider whose concurrency limit is
// 1; the next call must receive MTBusy and fail over to the redundant
// provider instead of queueing blind or surfacing an app error.
func TestRPCBusyShedFailsOver(t *testing.T) {
	net := netsim.New(netsim.Config{Seed: 33, Latency: 300 * time.Microsecond})
	defer net.Close()
	provA := newSimNode(t, net, "a-prov", WithRPCInflightLimit(1))
	provB := newSimNode(t, net, "b-prov")
	client := newSimNode(t, net, "client")
	syncNodes(t, provA, provB, client)

	retT := presentation.String_()
	release := make(chan struct{})
	if err := provA.RPC().Register("work.fn", "work", nil, retT, qos.CallQoS{},
		func(any) (any, error) {
			<-release
			return "a-prov", nil
		}); err != nil {
		t.Fatal(err)
	}
	if err := provB.RPC().Register("work.fn", "work", nil, retT, qos.CallQoS{},
		func(any) (any, error) { return "b-prov", nil }); err != nil {
		t.Fatal(err)
	}
	provA.AnnounceNow()
	provB.AnnounceNow()
	waitUntil(t, 3*time.Second, "both providers discovered", func() bool {
		return client.Directory().ProviderCount(naming.KindFunction, "work.fn") == 2
	})

	ctx := context.Background()
	q := qos.CallQoS{Binding: qos.BindStatic, Deadline: 5 * time.Second}
	occupied := make(chan error, 1)
	go func() {
		_, err := client.RPC().Call(ctx, "work.fn", nil, nil, retT, q)
		occupied <- err
	}()
	waitUntil(t, 3*time.Second, "occupying call executing on a-prov", func() bool {
		select {
		case err := <-occupied:
			t.Errorf("occupying call returned early: %v", err)
			close(release)
			return true
		default:
		}
		return provA.RPC().Inflight() > 0
	})

	start := time.Now()
	got, err := client.RPC().Call(ctx, "work.fn", nil, nil, retT, q)
	elapsed := time.Since(start)
	if err != nil {
		// In particular MTBusy must not surface as an AppError.
		var appErr *rpc.AppError
		if errors.As(err, &appErr) {
			t.Fatalf("busy surfaced as app error: %v", appErr)
		}
		t.Fatalf("shed call did not fail over: %v", err)
	}
	if got != "b-prov" {
		t.Errorf("served by %v, want failover to b-prov", got)
	}
	if provA.RPC().BusyRejects() == 0 {
		t.Error("provider never shed with MTBusy")
	}
	if elapsed > q.Deadline {
		t.Errorf("failover took %v", elapsed)
	}
	close(release)
	if err := <-occupied; err != nil {
		t.Errorf("occupying call failed: %v", err)
	}
}
