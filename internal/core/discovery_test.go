package core

import (
	"fmt"
	"testing"
	"time"

	"uavmw/internal/naming"
	"uavmw/internal/netsim"
	"uavmw/internal/presentation"
	"uavmw/internal/protocol"
	"uavmw/internal/qos"
	"uavmw/internal/transport"
)

// The incremental discovery plane: registrations multicast versioned
// deltas, the periodic beacon is a constant-size digest, and gaps repair
// through unicast anti-entropy sync. These tests pin the convergence
// properties under churn.

// offerN registers count variables "prefix.i" on node.
func offerN(t *testing.T, n *Node, prefix string, count int) {
	t.Helper()
	for i := 0; i < count; i++ {
		name := fmt.Sprintf("%s.%d", prefix, i)
		if _, err := n.Variables().Offer(name, "svc", gpsType, qos.VariableQoS{}); err != nil {
			t.Fatal(err)
		}
	}
}

// sees reports whether node resolves count records of every prefix.i name.
func seesAll(n *Node, prefix string, count int) bool {
	for i := 0; i < count; i++ {
		if n.Directory().ProviderCount(naming.KindVariable, fmt.Sprintf("%s.%d", prefix, i)) != 1 {
			return false
		}
	}
	return true
}

func TestRegistrationAnnouncesWithoutBeacon(t *testing.T) {
	// With a very long announce period, a new offer must still become
	// resolvable remotely — via the immediate delta, not the beacon.
	bus := transport.NewBus()
	pub := newBusNode(t, bus, "pub", WithAnnouncePeriod(10*time.Second))
	sub := newBusNode(t, bus, "sub", WithAnnouncePeriod(10*time.Second))
	// Introduce both nodes first (a beacon tick is 10s away), so the
	// offer below can only propagate via the delta path.
	pub.AnnounceNow()
	sub.AnnounceNow()
	waitUntil(t, 2*time.Second, "startup announce", func() bool {
		return pub.DiscoveryStats().FullAnnouncesSent >= 1
	})

	start := time.Now()
	if _, err := pub.Variables().Offer("fast.var", "svc", gpsType, qos.VariableQoS{}); err != nil {
		t.Fatal(err)
	}
	waitUntil(t, 2*time.Second, "delta-announced record", func() bool {
		return sub.Directory().ProviderCount(naming.KindVariable, "fast.var") == 1
	})
	if lat := time.Since(start); lat > time.Second {
		t.Errorf("discovery took %v; the delta path should need one hop, not a beacon period", lat)
	}
	if s := pub.DiscoveryStats(); s.DeltasSent == 0 {
		t.Errorf("no deltas sent: %+v", s)
	}
	if s := sub.DiscoveryStats(); s.DeltasReceived == 0 {
		t.Errorf("no deltas received: %+v", s)
	}
}

func TestLateJoinerConvergesViaSync(t *testing.T) {
	net := netsim.New(netsim.Config{Seed: 21, Latency: 200 * time.Microsecond})
	t.Cleanup(net.Close)
	a := newSimNode(t, net, "a")
	const records = 40
	offerN(t, a, "late", records)
	// Let a's startup full-state announce and registration deltas drain
	// before the joiner exists: it must miss all of them.
	waitUntil(t, 2*time.Second, "a's first beacons", func() bool {
		return a.DiscoveryStats().HeartbeatsSent >= 2
	})

	// The joiner has missed every delta; only digest-triggered sync can
	// deliver the full catalog.
	b := newSimNode(t, net, "b")
	waitUntil(t, 3*time.Second, "late joiner full catalog", func() bool {
		return seesAll(b, "late", records)
	})
	if s := b.DiscoveryStats(); s.SyncRepliesApplied == 0 {
		t.Errorf("late joiner converged without a sync: %+v", s)
	}
}

func TestRestartWithNewEpochConverges(t *testing.T) {
	net := netsim.New(netsim.Config{Seed: 22, Latency: 200 * time.Microsecond})
	t.Cleanup(net.Close)
	a := newSimNode(t, net, "a")
	b := newSimNode(t, net, "b")
	offerN(t, a, "old", 5)
	waitUntil(t, 3*time.Second, "pre-restart catalog", func() bool {
		return seesAll(b, "old", 5)
	})

	// Restart "a": new container on the same id, new epoch, new offer.
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	a2 := newSimNode(t, net, "a")
	offerN(t, a2, "new", 5)

	waitUntil(t, 3*time.Second, "post-restart catalog", func() bool {
		return seesAll(b, "new", 5)
	})
	// The fresh epoch must have displaced the previous incarnation's
	// records, not merged with them.
	waitUntil(t, 3*time.Second, "old records displaced", func() bool {
		for i := 0; i < 5; i++ {
			if b.Directory().ProviderCount(naming.KindVariable, fmt.Sprintf("old.%d", i)) != 0 {
				return false
			}
		}
		return true
	})
}

func TestPartitionHealConverges(t *testing.T) {
	net := netsim.New(netsim.Config{Seed: 23, Latency: 200 * time.Microsecond})
	t.Cleanup(net.Close)
	// Generous failure deadline so the partition outlives suspicion and
	// the heal exercises version-gap repair, not a fresh join.
	opts := []NodeOption{WithFailureDeadline(10 * time.Second), WithDirectoryTTL(10 * time.Second)}
	a := newSimNode(t, net, "a", opts...)
	b := newSimNode(t, net, "b", opts...)
	c := newSimNode(t, net, "c", opts...)
	offerN(t, a, "base", 3)
	waitUntil(t, 3*time.Second, "baseline catalog", func() bool {
		return seesAll(b, "base", 3) && seesAll(c, "base", 3)
	})

	// Partition c away from a, register during the partition: c misses
	// the deltas.
	net.Partition("a", "c")
	offerN(t, a, "during", 3)
	waitUntil(t, 3*time.Second, "survivor sees partition-time offers", func() bool {
		return seesAll(b, "during", 3)
	})
	if seesAll(c, "during", 3) {
		t.Fatal("partitioned node saw offers through the partition")
	}

	// Heal: the next digest exposes the version gap; c must pull the
	// full set within a bounded number of heartbeats.
	net.Heal("a", "c")
	healed := time.Now()
	waitUntil(t, 3*time.Second, "healed catalog", func() bool {
		return seesAll(c, "during", 3) && seesAll(c, "base", 3)
	})
	// Bounded convergence: a handful of beacon periods, not the TTL.
	if lat := time.Since(healed); lat > 10*25*time.Millisecond {
		t.Errorf("heal convergence took %v, want within ~10 heartbeats", lat)
	}
	// The gap spans few versions, so the sync request is answered with a
	// compact catch-up delta, not a chunked snapshot.
	if s := c.DiscoveryStats(); s.SyncRequestsSent == 0 {
		t.Errorf("heal did not use anti-entropy sync: %+v", s)
	}
	if s := a.DiscoveryStats(); s.SyncDeltaReplies == 0 {
		t.Errorf("small gap not served as a catch-up delta: %+v", s)
	}
}

func TestWithdrawalPropagates(t *testing.T) {
	bus := transport.NewBus()
	pub := newBusNode(t, bus, "pub")
	sub := newBusNode(t, bus, "sub")

	p, err := pub.Variables().Offer("tmp.var", "svc", gpsType, qos.VariableQoS{})
	if err != nil {
		t.Fatal(err)
	}
	if err := pub.RPC().Register("tmp.fn", "svc", nil, presentation.String_(), qos.CallQoS{},
		func(any) (any, error) { return "x", nil }); err != nil {
		t.Fatal(err)
	}
	waitUntil(t, 2*time.Second, "offers visible", func() bool {
		return sub.Directory().ProviderCount(naming.KindVariable, "tmp.var") == 1 &&
			sub.Directory().ProviderCount(naming.KindFunction, "tmp.fn") == 1
	})

	p.Close()
	pub.RPC().Unregister("tmp.fn")
	waitUntil(t, 2*time.Second, "withdrawals visible", func() bool {
		return sub.Directory().ProviderCount(naming.KindVariable, "tmp.var") == 0 &&
			sub.Directory().ProviderCount(naming.KindFunction, "tmp.fn") == 0
	})
}

func TestHeartbeatKeepsRecordsAliveWithoutTraffic(t *testing.T) {
	// With deltas only at registration time, steady state depends on the
	// digest refreshing TTLs: records must survive many TTL windows.
	bus := transport.NewBus()
	pub := newBusNode(t, bus, "pub") // 25ms period → 150ms TTL
	sub := newBusNode(t, bus, "sub")
	offerN(t, pub, "keep", 2)
	waitUntil(t, 2*time.Second, "records visible", func() bool {
		return seesAll(sub, "keep", 2)
	})
	time.Sleep(500 * time.Millisecond) // > 3 TTL windows, no offer changes
	if !seesAll(sub, "keep", 2) {
		t.Fatal("records expired despite heartbeats")
	}
	if s := sub.DiscoveryStats(); s.HeartbeatsReceived == 0 {
		t.Errorf("no heartbeats received: %+v", s)
	}
}

func TestDiscoveryStatsCountMalformedFrames(t *testing.T) {
	bus := transport.NewBus()
	n := newBusNode(t, bus, "n")
	ep, err := bus.Endpoint("rogue")
	if err != nil {
		t.Fatal(err)
	}
	for _, mt := range []protocol.MsgType{
		protocol.MTHeartbeat, protocol.MTAnnounceDelta, protocol.MTSyncReq, protocol.MTSyncRep, protocol.MTAnnounce,
	} {
		raw, err := protocol.EncodeFrame(&protocol.Frame{Type: mt, Seq: 1, Payload: []byte{0xFF, 0xEE}})
		if err != nil {
			t.Fatal(err)
		}
		if err := ep.Send("n", raw); err != nil {
			t.Fatal(err)
		}
	}
	waitUntil(t, 2*time.Second, "malformed counters", func() bool {
		return n.DiscoveryStats().Malformed >= 5
	})
}
