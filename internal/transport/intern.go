package transport

import "sync"

// Interning table for the short identifier strings that arrive on every
// datagram envelope (sender node id, group name). Converting the raw header
// bytes to a string per packet would be one heap allocation per datagram;
// the population of distinct ids on a deployment is tiny, so a bounded
// lookaside table makes the conversion allocation-free after first sight.
// Once the table is full, unseen names fall back to plain allocation rather
// than evicting — an adversarial flood of unique ids degrades to the old
// cost, it cannot poison the cache.
const internCap = 4096

var (
	internMu  sync.RWMutex
	internTab = make(map[string]string, 64)
)

// internString returns a canonical string for b without allocating on the
// hit path (the compiler recognizes the map[string(b)] lookup idiom).
func internString(b []byte) string {
	if len(b) == 0 {
		return ""
	}
	internMu.RLock()
	s, ok := internTab[string(b)]
	internMu.RUnlock()
	if ok {
		return s
	}
	internMu.Lock()
	defer internMu.Unlock()
	if s, ok := internTab[string(b)]; ok {
		return s
	}
	s = string(b)
	if len(internTab) < internCap {
		internTab[s] = s
	}
	return s
}
