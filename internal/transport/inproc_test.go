package transport

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

// collector gathers delivered packets for assertions.
type collector struct {
	mu   sync.Mutex
	pkts []Packet
	ch   chan Packet
}

func newCollector() *collector {
	return &collector{ch: make(chan Packet, 256)}
}

func (c *collector) handler() Handler {
	return func(pkt Packet) {
		c.mu.Lock()
		c.pkts = append(c.pkts, pkt)
		c.mu.Unlock()
		select {
		case c.ch <- pkt:
		default:
		}
	}
}

func (c *collector) wait(t *testing.T, n int, timeout time.Duration) []Packet {
	t.Helper()
	deadline := time.After(timeout)
	for {
		c.mu.Lock()
		if len(c.pkts) >= n {
			out := make([]Packet, len(c.pkts))
			copy(out, c.pkts)
			c.mu.Unlock()
			return out
		}
		c.mu.Unlock()
		select {
		case <-deadline:
			c.mu.Lock()
			got := len(c.pkts)
			c.mu.Unlock()
			t.Fatalf("timeout waiting for %d packets, got %d", n, got)
		case <-time.After(time.Millisecond):
		}
	}
}

func (c *collector) count() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.pkts)
}

func TestBusUnicast(t *testing.T) {
	bus := NewBus()
	a, err := bus.Endpoint("a")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = a.Close() }()
	b, err := bus.Endpoint("b")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = b.Close() }()

	col := newCollector()
	b.SetHandler(col.handler())

	if err := a.Send("b", []byte("hello")); err != nil {
		t.Fatalf("Send: %v", err)
	}
	pkts := col.wait(t, 1, time.Second)
	if pkts[0].From != "a" || pkts[0].To != "b" || string(pkts[0].Payload) != "hello" {
		t.Errorf("packet = %+v", pkts[0])
	}
}

func TestBusUnknownDestination(t *testing.T) {
	bus := NewBus()
	a, err := bus.Endpoint("a")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = a.Close() }()
	if err := a.Send("ghost", []byte("x")); !errors.Is(err, ErrUnknownNode) {
		t.Errorf("want ErrUnknownNode, got %v", err)
	}
}

func TestBusDuplicateNode(t *testing.T) {
	bus := NewBus()
	a, err := bus.Endpoint("a")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = a.Close() }()
	if _, err := bus.Endpoint("a"); !errors.Is(err, ErrDuplicateNode) {
		t.Errorf("want ErrDuplicateNode, got %v", err)
	}
	if _, err := bus.Endpoint(""); err == nil {
		t.Error("empty id must fail")
	}
}

func TestBusMulticast(t *testing.T) {
	bus := NewBus()
	pub, err := bus.Endpoint("pub")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = pub.Close() }()

	const groupName = "telemetry"
	cols := make([]*collector, 3)
	for i := range cols {
		ep, err := bus.Endpoint(NodeID(fmt.Sprintf("sub%d", i)))
		if err != nil {
			t.Fatal(err)
		}
		defer func() { _ = ep.Close() }()
		cols[i] = newCollector()
		ep.SetHandler(cols[i].handler())
		if err := ep.Join(groupName); err != nil {
			t.Fatal(err)
		}
	}

	if err := pub.SendGroup(groupName, []byte("pos")); err != nil {
		t.Fatal(err)
	}
	for i, col := range cols {
		pkts := col.wait(t, 1, time.Second)
		if pkts[0].Group != groupName || string(pkts[0].Payload) != "pos" {
			t.Errorf("sub%d packet = %+v", i, pkts[0])
		}
	}

	// One wire packet despite three receivers (E3's core property).
	st := pub.Stats()
	if st.PacketsWire != 1 {
		t.Errorf("PacketsWire = %d, want 1", st.PacketsWire)
	}
}

func TestBusGroupNoSelfLoopback(t *testing.T) {
	bus := NewBus()
	a, err := bus.Endpoint("a")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = a.Close() }()
	col := newCollector()
	a.SetHandler(col.handler())
	if err := a.Join("g"); err != nil {
		t.Fatal(err)
	}
	if err := a.SendGroup("g", []byte("x")); err != nil {
		t.Fatal(err)
	}
	time.Sleep(20 * time.Millisecond)
	if col.count() != 0 {
		t.Error("sender must not receive its own group packet")
	}
}

func TestBusLeaveGroup(t *testing.T) {
	bus := NewBus()
	pub, _ := bus.Endpoint("pub")
	defer func() { _ = pub.Close() }()
	sub, _ := bus.Endpoint("sub")
	defer func() { _ = sub.Close() }()
	col := newCollector()
	sub.SetHandler(col.handler())

	if err := sub.Join("g"); err != nil {
		t.Fatal(err)
	}
	if err := pub.SendGroup("g", []byte("1")); err != nil {
		t.Fatal(err)
	}
	col.wait(t, 1, time.Second)

	if err := sub.Leave("g"); err != nil {
		t.Fatal(err)
	}
	if err := pub.SendGroup("g", []byte("2")); err != nil {
		t.Fatal(err)
	}
	time.Sleep(20 * time.Millisecond)
	if col.count() != 1 {
		t.Errorf("got %d packets after leave, want 1", col.count())
	}
}

func TestBusNoHandlerDrops(t *testing.T) {
	bus := NewBus()
	a, _ := bus.Endpoint("a")
	defer func() { _ = a.Close() }()
	b, _ := bus.Endpoint("b")
	defer func() { _ = b.Close() }()

	if err := a.Send("b", []byte("x")); err != nil {
		t.Fatal(err)
	}
	deadline := time.After(time.Second)
	for b.Stats().PacketsDropped == 0 {
		select {
		case <-deadline:
			t.Fatal("drop not counted")
		case <-time.After(time.Millisecond):
		}
	}
	if b.Stats().PacketsRecv != 0 {
		t.Error("no packet should be delivered without a handler")
	}
}

func TestBusCloseSemantics(t *testing.T) {
	bus := NewBus()
	a, _ := bus.Endpoint("a")
	b, _ := bus.Endpoint("b")
	col := newCollector()
	b.SetHandler(col.handler())

	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	if err := a.Close(); err != nil {
		t.Error("Close must be idempotent")
	}
	if err := a.Send("b", []byte("x")); !errors.Is(err, ErrClosed) {
		t.Errorf("send after close: %v", err)
	}
	if err := a.SendGroup("g", nil); !errors.Is(err, ErrClosed) {
		t.Errorf("group send after close: %v", err)
	}
	if err := a.Join("g"); !errors.Is(err, ErrClosed) {
		t.Errorf("join after close: %v", err)
	}
	// b can no longer reach a.
	if err := b.Send("a", []byte("x")); !errors.Is(err, ErrUnknownNode) {
		t.Errorf("send to closed: %v", err)
	}
	// Node id is reusable after close.
	a2, err := bus.Endpoint("a")
	if err != nil {
		t.Fatalf("reuse id after close: %v", err)
	}
	_ = a2.Close()
	_ = b.Close()
}

func TestBusStatsAccounting(t *testing.T) {
	bus := NewBus()
	a, _ := bus.Endpoint("a")
	defer func() { _ = a.Close() }()
	b, _ := bus.Endpoint("b")
	defer func() { _ = b.Close() }()
	col := newCollector()
	b.SetHandler(col.handler())

	payload := []byte("12345")
	for i := 0; i < 10; i++ {
		if err := a.Send("b", payload); err != nil {
			t.Fatal(err)
		}
	}
	col.wait(t, 10, time.Second)
	sa, sb := a.Stats(), b.Stats()
	if sa.PacketsSent != 10 || sa.BytesSent != 50 {
		t.Errorf("sender stats = %+v", sa)
	}
	if sb.PacketsRecv != 10 || sb.BytesRecv != 50 {
		t.Errorf("receiver stats = %+v", sb)
	}
}

func TestBusNodes(t *testing.T) {
	bus := NewBus()
	a, _ := bus.Endpoint("a")
	defer func() { _ = a.Close() }()
	b, _ := bus.Endpoint("b")
	defer func() { _ = b.Close() }()
	nodes := bus.Nodes()
	if len(nodes) != 2 {
		t.Errorf("Nodes() = %v", nodes)
	}
}

func TestBusConcurrentTraffic(t *testing.T) {
	bus := NewBus()
	const n = 8
	eps := make([]*BusEndpoint, n)
	cols := make([]*collector, n)
	for i := range eps {
		ep, err := bus.Endpoint(NodeID(fmt.Sprintf("n%d", i)))
		if err != nil {
			t.Fatal(err)
		}
		defer func() { _ = ep.Close() }()
		eps[i] = ep
		cols[i] = newCollector()
		ep.SetHandler(cols[i].handler())
	}

	var wg sync.WaitGroup
	for i := range eps {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				dst := NodeID(fmt.Sprintf("n%d", (i+1)%n))
				_ = eps[i].Send(dst, []byte{byte(j)})
			}
		}(i)
	}
	wg.Wait()
	for i := range cols {
		cols[i].wait(t, 50, 2*time.Second)
	}
}

func TestStatsAdd(t *testing.T) {
	a := Stats{PacketsSent: 1, BytesSent: 2, PacketsWire: 3, BytesWire: 4, PacketsRecv: 5, BytesRecv: 6, PacketsDropped: 7}
	b := a
	b.Add(a)
	want := Stats{PacketsSent: 2, BytesSent: 4, PacketsWire: 6, BytesWire: 8, PacketsRecv: 10, BytesRecv: 12, PacketsDropped: 14}
	if b != want {
		t.Errorf("Add = %+v, want %+v", b, want)
	}
}
