package transport

import (
	"errors"
	"net"
	"testing"
	"time"
)

// netDial opens a plain UDP connection to addr for injecting raw datagrams.
func netDial(addr string) (net.Conn, error) {
	return net.Dial("udp4", addr)
}

// newUDPPair builds two UDP transports wired to each other on loopback.
func newUDPPair(t *testing.T) (*UDP, *UDP) {
	t.Helper()
	a, err := NewUDP("a", "127.0.0.1:0", nil)
	if err != nil {
		t.Skipf("udp unavailable: %v", err)
	}
	b, err := NewUDP("b", "127.0.0.1:0", nil)
	if err != nil {
		_ = a.Close()
		t.Skipf("udp unavailable: %v", err)
	}
	if err := a.AddPeer("b", b.LocalAddr()); err != nil {
		t.Fatal(err)
	}
	if err := b.AddPeer("a", a.LocalAddr()); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		_ = a.Close()
		_ = b.Close()
	})
	return a, b
}

func TestUDPUnicast(t *testing.T) {
	a, b := newUDPPair(t)
	col := newCollector()
	b.SetHandler(col.handler())

	if err := a.Send("b", []byte("ping")); err != nil {
		t.Fatalf("Send: %v", err)
	}
	pkts := col.wait(t, 1, 2*time.Second)
	if pkts[0].From != "a" || string(pkts[0].Payload) != "ping" {
		t.Errorf("packet = %+v", pkts[0])
	}
	// Reply direction.
	colA := newCollector()
	a.SetHandler(colA.handler())
	if err := b.Send("a", []byte("pong")); err != nil {
		t.Fatal(err)
	}
	back := colA.wait(t, 1, 2*time.Second)
	if string(back[0].Payload) != "pong" {
		t.Errorf("reply = %+v", back[0])
	}
}

func TestUDPUnknownPeer(t *testing.T) {
	a, _ := newUDPPair(t)
	if err := a.Send("ghost", []byte("x")); !errors.Is(err, ErrUnknownNode) {
		t.Errorf("want ErrUnknownNode, got %v", err)
	}
}

func TestUDPClose(t *testing.T) {
	a, err := NewUDP("solo", "127.0.0.1:0", nil)
	if err != nil {
		t.Skipf("udp unavailable: %v", err)
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	if err := a.Close(); err != nil {
		t.Error("Close must be idempotent")
	}
	if err := a.Send("x", nil); !errors.Is(err, ErrClosed) {
		t.Errorf("send after close: %v", err)
	}
}

func TestUDPLeaveSemantics(t *testing.T) {
	a, err := NewUDP("solo", "127.0.0.1:0", nil, WithUnicastFanout())
	if err != nil {
		t.Skipf("udp unavailable: %v", err)
	}
	// Leaving a never-joined group is a harmless no-op.
	if err := a.Leave("ghost-group"); err != nil {
		t.Errorf("leave unknown group: %v", err)
	}
	if err := a.Join("g"); err != nil {
		t.Fatal(err)
	}
	if err := a.Leave("g"); err != nil {
		t.Errorf("leave joined group: %v", err)
	}
	if err := a.Leave("g"); err != nil {
		t.Errorf("double leave must be idempotent: %v", err)
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	// After Close the transport is gone; Leave must say so rather than
	// silently mutating a dead handle.
	if err := a.Leave("g"); !errors.Is(err, ErrClosed) {
		t.Errorf("leave after close: %v, want ErrClosed", err)
	}
}

func TestUDPMulticast(t *testing.T) {
	a, b := newUDPPair(t)
	const group = "mc-test"
	if err := b.Join(group); err != nil {
		t.Skipf("multicast unavailable in this environment: %v", err)
	}
	col := newCollector()
	b.SetHandler(col.handler())

	// Multicast may be flaky on constrained hosts; try a few times, skip
	// if nothing ever arrives.
	for i := 0; i < 10; i++ {
		if err := a.SendGroup(group, []byte("mc")); err != nil {
			t.Skipf("multicast send failed: %v", err)
		}
		time.Sleep(50 * time.Millisecond)
		if col.count() > 0 {
			pkts := col.wait(t, 1, time.Second)
			if pkts[0].Group != group || string(pkts[0].Payload) != "mc" {
				t.Errorf("packet = %+v", pkts[0])
			}
			if err := b.Leave(group); err != nil {
				t.Errorf("Leave: %v", err)
			}
			return
		}
	}
	t.Skip("multicast not routable in this environment")
}

func TestUDPGroupAddrDeterministic(t *testing.T) {
	a, b := newUDPPair(t)
	if a.GroupAddr("g1").String() != b.GroupAddr("g1").String() {
		t.Error("group address must be derived identically on all nodes")
	}
	if a.GroupAddr("g1").String() == a.GroupAddr("g2").String() {
		t.Error("different groups should get different addresses")
	}
}

func TestUDPBadDatagramIgnored(t *testing.T) {
	a, b := newUDPPair(t)
	col := newCollector()
	b.SetHandler(col.handler())
	// Raw garbage straight to the socket: must be counted dropped, not crash.
	conn, err := netDial(b.LocalAddr())
	if err != nil {
		t.Skipf("dial: %v", err)
	}
	defer func() { _ = conn.Close() }()
	if _, err := conn.Write([]byte{0xFF, 0x00, 0x01}); err != nil {
		t.Skipf("write: %v", err)
	}
	deadline := time.After(2 * time.Second)
	for b.Stats().PacketsDropped == 0 {
		select {
		case <-deadline:
			t.Fatal("garbage datagram not counted as dropped")
		case <-time.After(time.Millisecond):
		}
	}
	_ = a
}

func TestTCPUnicast(t *testing.T) {
	a, err := NewTCP("a", "127.0.0.1:0", nil)
	if err != nil {
		t.Skipf("tcp unavailable: %v", err)
	}
	defer func() { _ = a.Close() }()
	b, err := NewTCP("b", "127.0.0.1:0", nil)
	if err != nil {
		t.Skipf("tcp unavailable: %v", err)
	}
	defer func() { _ = b.Close() }()
	a.AddPeer("b", b.LocalAddr())
	b.AddPeer("a", a.LocalAddr())

	col := newCollector()
	b.SetHandler(col.handler())

	for i := 0; i < 5; i++ {
		if err := a.Send("b", []byte{byte(i)}); err != nil {
			t.Fatalf("Send %d: %v", i, err)
		}
	}
	pkts := col.wait(t, 5, 2*time.Second)
	for i, pkt := range pkts {
		if pkt.From != "a" || len(pkt.Payload) != 1 || pkt.Payload[0] != byte(i) {
			t.Errorf("packet %d = %+v", i, pkt)
		}
	}

	// Reverse direction uses its own dial.
	colA := newCollector()
	a.SetHandler(colA.handler())
	if err := b.Send("a", []byte("back")); err != nil {
		t.Fatal(err)
	}
	back := colA.wait(t, 1, 2*time.Second)
	if string(back[0].Payload) != "back" {
		t.Errorf("reverse = %+v", back[0])
	}
}

func TestTCPNoMulticast(t *testing.T) {
	a, err := NewTCP("a", "127.0.0.1:0", nil)
	if err != nil {
		t.Skipf("tcp unavailable: %v", err)
	}
	defer func() { _ = a.Close() }()
	if err := a.SendGroup("g", nil); !errors.Is(err, ErrNoMulticast) {
		t.Errorf("SendGroup: %v", err)
	}
	if err := a.Join("g"); !errors.Is(err, ErrNoMulticast) {
		t.Errorf("Join: %v", err)
	}
	if err := a.Leave("g"); !errors.Is(err, ErrNoMulticast) {
		t.Errorf("Leave: %v", err)
	}
}

func TestTCPUnknownPeerAndClose(t *testing.T) {
	a, err := NewTCP("a", "127.0.0.1:0", nil)
	if err != nil {
		t.Skipf("tcp unavailable: %v", err)
	}
	if err := a.Send("ghost", []byte("x")); !errors.Is(err, ErrUnknownNode) {
		t.Errorf("unknown peer: %v", err)
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	if err := a.Close(); err != nil {
		t.Error("Close must be idempotent")
	}
	if err := a.Send("b", nil); !errors.Is(err, ErrClosed) {
		t.Errorf("send after close: %v", err)
	}
}

func TestTCPLargeFrame(t *testing.T) {
	a, err := NewTCP("a", "127.0.0.1:0", nil)
	if err != nil {
		t.Skipf("tcp unavailable: %v", err)
	}
	defer func() { _ = a.Close() }()
	b, err := NewTCP("b", "127.0.0.1:0", nil)
	if err != nil {
		t.Skipf("tcp unavailable: %v", err)
	}
	defer func() { _ = b.Close() }()
	a.AddPeer("b", b.LocalAddr())

	col := newCollector()
	b.SetHandler(col.handler())
	big := make([]byte, 1<<20)
	for i := range big {
		big[i] = byte(i)
	}
	if err := a.Send("b", big); err != nil {
		t.Fatal(err)
	}
	pkts := col.wait(t, 1, 5*time.Second)
	if len(pkts[0].Payload) != len(big) {
		t.Fatalf("size = %d", len(pkts[0].Payload))
	}
	for i := 0; i < len(big); i += 4096 {
		if pkts[0].Payload[i] != big[i] {
			t.Fatalf("corruption at %d", i)
		}
	}
}

// Compile-time checks: the address-book transports implement PeerBook and
// Addressable, so the container's bearer plane can manage their peers from
// discovery records.
var (
	_ PeerBook    = (*UDP)(nil)
	_ PeerBook    = (*TCP)(nil)
	_ Addressable = (*UDP)(nil)
	_ Addressable = (*TCP)(nil)
)

func TestUDPAddPeerIdempotentUpdate(t *testing.T) {
	a, b := newUDPPair(t)
	// Stand up a third endpoint and re-point "b" at it: the next Send must
	// go to the new address, not the original b.
	c, err := NewUDP("c", "127.0.0.1:0", nil)
	if err != nil {
		t.Skipf("udp unavailable: %v", err)
	}
	t.Cleanup(func() { _ = c.Close() })
	colB, colC := newCollector(), newCollector()
	b.SetHandler(colB.handler())
	c.SetHandler(colC.handler())

	if err := a.AddPeer("b", c.LocalAddr()); err != nil {
		t.Fatalf("re-AddPeer: %v", err)
	}
	if err := a.Send("b", []byte("moved")); err != nil {
		t.Fatalf("Send after update: %v", err)
	}
	pkts := colC.wait(t, 1, 2*time.Second)
	if string(pkts[0].Payload) != "moved" {
		t.Errorf("payload = %q", pkts[0].Payload)
	}
	if colB.count() != 0 {
		t.Errorf("old address still received %d packets", colB.count())
	}
	if err := a.AddPeer("", c.LocalAddr()); err == nil {
		t.Error("empty peer id accepted")
	}
}

func TestUDPRemovePeer(t *testing.T) {
	a, b := newUDPPair(t)
	a.RemovePeer("b")
	if err := a.Send("b", []byte("x")); !errors.Is(err, ErrUnknownNode) {
		t.Errorf("Send after RemovePeer = %v, want ErrUnknownNode", err)
	}
	a.RemovePeer("b") // removing again is a no-op
	// Re-adding restores delivery.
	col := newCollector()
	b.SetHandler(col.handler())
	if err := a.AddPeer("b", b.LocalAddr()); err != nil {
		t.Fatal(err)
	}
	if err := a.Send("b", []byte("back")); err != nil {
		t.Fatal(err)
	}
	col.wait(t, 1, 2*time.Second)
}

func TestTCPRemovePeer(t *testing.T) {
	a, err := NewTCP("a", "127.0.0.1:0", nil)
	if err != nil {
		t.Skipf("tcp unavailable: %v", err)
	}
	t.Cleanup(func() { _ = a.Close() })
	b, err := NewTCP("b", "127.0.0.1:0", nil)
	if err != nil {
		t.Skipf("tcp unavailable: %v", err)
	}
	t.Cleanup(func() { _ = b.Close() })
	if err := a.AddPeer("b", b.LocalAddr()); err != nil {
		t.Fatal(err)
	}
	col := newCollector()
	b.SetHandler(col.handler())
	if err := a.Send("b", []byte("hi")); err != nil {
		t.Fatal(err)
	}
	col.wait(t, 1, 2*time.Second)

	a.RemovePeer("b")
	if err := a.Send("b", []byte("gone")); !errors.Is(err, ErrUnknownNode) {
		t.Errorf("Send after RemovePeer = %v, want ErrUnknownNode", err)
	}
	a.RemovePeer("zz") // unknown peer is a no-op
}
