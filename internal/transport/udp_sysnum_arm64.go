//go:build linux && arm64

package transport

const (
	sysSendmmsg = 269
	sysRecvmmsg = 243
)
