package transport

import (
	"fmt"
	"sync"

	"uavmw/internal/bufpool"
)

// Bus is an in-process transport fabric: every endpoint created from the
// same Bus can reach every other by node ID or multicast group. It models
// the paper's same-host case where several containers share one airframe
// computer, and it is the default substrate for unit tests.
//
// Delivery is asynchronous: each endpoint owns a bounded queue drained by a
// dispatch goroutine, so a slow handler exerts backpressure on its own
// queue and overflow is counted as drop — mirroring a NIC ring buffer.
type Bus struct {
	mu     sync.RWMutex
	nodes  map[NodeID]*BusEndpoint
	groups map[string]map[NodeID]*BusEndpoint
}

// NewBus returns an empty in-process fabric.
func NewBus() *Bus {
	return &Bus{
		nodes:  make(map[NodeID]*BusEndpoint),
		groups: make(map[string]map[NodeID]*BusEndpoint),
	}
}

// defaultQueueLen is the per-endpoint receive queue length. Sized like a
// small NIC ring: large enough to absorb bursts, small enough that runaway
// producers surface as drops in tests instead of unbounded memory.
const defaultQueueLen = 1024

// Endpoint creates and registers the endpoint for node id.
func (b *Bus) Endpoint(id NodeID) (*BusEndpoint, error) {
	if id == "" {
		return nil, fmt.Errorf("transport: empty node id: %w", ErrUnknownNode)
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if _, exists := b.nodes[id]; exists {
		return nil, fmt.Errorf("transport: %q: %w", id, ErrDuplicateNode)
	}
	ep := &BusEndpoint{
		bus:   b,
		id:    id,
		queue: make(chan Packet, defaultQueueLen),
		done:  make(chan struct{}),
	}
	ep.wg.Add(1)
	go ep.dispatch()
	b.nodes[id] = ep
	return ep, nil
}

// lookup returns the endpoint for id, or nil.
func (b *Bus) lookup(id NodeID) *BusEndpoint {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return b.nodes[id]
}

// members snapshots the endpoints subscribed to group.
func (b *Bus) members(group string) []*BusEndpoint {
	b.mu.RLock()
	defer b.mu.RUnlock()
	set := b.groups[group]
	out := make([]*BusEndpoint, 0, len(set))
	for _, ep := range set {
		out = append(out, ep)
	}
	return out
}

func (b *Bus) join(group string, ep *BusEndpoint) {
	b.mu.Lock()
	defer b.mu.Unlock()
	set := b.groups[group]
	if set == nil {
		set = make(map[NodeID]*BusEndpoint)
		b.groups[group] = set
	}
	set[ep.id] = ep
}

func (b *Bus) leave(group string, ep *BusEndpoint) {
	b.mu.Lock()
	defer b.mu.Unlock()
	set := b.groups[group]
	delete(set, ep.id)
	if len(set) == 0 {
		delete(b.groups, group)
	}
}

func (b *Bus) remove(ep *BusEndpoint) {
	b.mu.Lock()
	defer b.mu.Unlock()
	delete(b.nodes, ep.id)
	for group, set := range b.groups {
		delete(set, ep.id)
		if len(set) == 0 {
			delete(b.groups, group)
		}
	}
}

// Nodes returns the ids of all registered endpoints.
func (b *Bus) Nodes() []NodeID {
	b.mu.RLock()
	defer b.mu.RUnlock()
	out := make([]NodeID, 0, len(b.nodes))
	for id := range b.nodes {
		out = append(out, id)
	}
	return out
}

// BusEndpoint is one node's attachment to a Bus.
type BusEndpoint struct {
	bus   *Bus
	id    NodeID
	queue chan Packet
	done  chan struct{}
	wg    sync.WaitGroup
	stats counters

	mu      sync.Mutex
	handler Handler
	closed  bool
}

var _ Transport = (*BusEndpoint)(nil)
var _ Multicaster = (*BusEndpoint)(nil)

// Node implements Transport.
func (e *BusEndpoint) Node() NodeID { return e.id }

// NativeMulticast implements Multicaster: a bus send reaches all members
// with one enqueue per member but one logical wire packet.
func (e *BusEndpoint) NativeMulticast() bool { return true }

// SetHandler implements Transport.
func (e *BusEndpoint) SetHandler(h Handler) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.handler = h
}

func (e *BusEndpoint) currentHandler() Handler {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.handler
}

func (e *BusEndpoint) isClosed() bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.closed
}

// Send implements Transport.
func (e *BusEndpoint) Send(to NodeID, payload []byte) error {
	if e.isClosed() {
		return fmt.Errorf("transport: send from %q: %w", e.id, ErrClosed)
	}
	dst := e.bus.lookup(to)
	if dst == nil {
		return fmt.Errorf("transport: send to %q: %w", to, ErrUnknownNode)
	}
	e.stats.sent(len(payload))
	e.stats.wire(len(payload))
	// Delivery is asynchronous (queue + dispatch goroutine) while the
	// caller may recycle payload the moment Send returns, so the bus takes
	// a pooled copy and hands the receiver a refcounted reference — the
	// transport ownership contract, with zero GC garbage in steady state.
	dst.enqueue(sharedPacket(Packet{From: e.id, To: to}, payload))
	return nil
}

// sharedPacket copies payload into a pooled buffer and attaches it to pkt
// as a refcounted Owner holding one reference (the queue's).
func sharedPacket(pkt Packet, payload []byte) Packet {
	buf := append(bufpool.Get(len(payload)), payload...)
	pkt.Owner = bufpool.Share(buf)
	pkt.Payload = buf
	return pkt
}

// SendGroup implements Transport.
func (e *BusEndpoint) SendGroup(group string, payload []byte) error {
	if e.isClosed() {
		return fmt.Errorf("transport: send from %q: %w", e.id, ErrClosed)
	}
	e.stats.sent(len(payload))
	// One wire packet regardless of member count: the in-process bus
	// models a shared medium with true multicast. No self-loopback —
	// local delivery is the container's bypass path.
	e.stats.wire(len(payload))
	// One pooled copy shared by every member: each queue holds its own
	// reference on the same immutable buffer, and the last consumer's
	// Release returns it to the pool.
	pkt := sharedPacket(Packet{From: e.id, Group: group}, payload)
	for _, member := range e.bus.members(group) {
		if member == e {
			continue
		}
		member.enqueue(Packet{From: pkt.From, Group: pkt.Group, Payload: pkt.Payload, Owner: pkt.Owner.Retain()})
	}
	// Drop the construction reference: delivery queues now own the buffer.
	pkt.Owner.Release()
	return nil
}

// Join implements Transport.
func (e *BusEndpoint) Join(group string) error {
	if e.isClosed() {
		return fmt.Errorf("transport: join from %q: %w", e.id, ErrClosed)
	}
	e.bus.join(group, e)
	return nil
}

// Leave implements Transport.
func (e *BusEndpoint) Leave(group string) error {
	if e.isClosed() {
		return fmt.Errorf("transport: leave from %q: %w", e.id, ErrClosed)
	}
	e.bus.leave(group, e)
	return nil
}

// Stats implements Transport.
func (e *BusEndpoint) Stats() Stats { return e.stats.snapshot() }

// Close implements Transport.
func (e *BusEndpoint) Close() error {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil
	}
	e.closed = true
	e.mu.Unlock()

	e.bus.remove(e)
	close(e.done)
	e.wg.Wait()
	return nil
}

// enqueue places a packet on the receive queue, dropping on overflow or
// after close. A dropped packet's buffer reference is released here; a
// queued one is released by deliver.
func (e *BusEndpoint) enqueue(pkt Packet) {
	select {
	case <-e.done:
		e.stats.dropped()
		pkt.Owner.Release()
		return
	default:
	}
	select {
	case e.queue <- pkt:
	default:
		e.stats.dropped()
		pkt.Owner.Release()
	}
}

// dispatch drains the queue onto the handler until Close.
func (e *BusEndpoint) dispatch() {
	defer e.wg.Done()
	for {
		select {
		case <-e.done:
			// Drain whatever is already queued so tests observe
			// deterministic delivery for pre-close sends.
			for {
				select {
				case pkt := <-e.queue:
					e.deliver(pkt)
				default:
					return
				}
			}
		case pkt := <-e.queue:
			e.deliver(pkt)
		}
	}
}

func (e *BusEndpoint) deliver(pkt Packet) {
	defer pkt.Owner.Release()
	h := e.currentHandler()
	if h == nil {
		e.stats.dropped()
		return
	}
	e.stats.recv(len(pkt.Payload))
	h(pkt)
}
