//go:build linux && amd64

package transport

// Vectored-datagram syscall numbers; the stdlib syscall table omits
// sendmmsg on amd64.
const (
	sysSendmmsg = 307
	sysRecvmmsg = 299
)
