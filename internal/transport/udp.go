package transport

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"net"
	"sync"

	"uavmw/internal/bufpool"
	"uavmw/internal/encoding"
)

// UDP is the datagram transport used between airframe nodes on the real
// LAN. Unicast packets travel node-to-node; group packets use IPv4
// multicast so one wire packet reaches every subscribed node, which is the
// §4.1 bandwidth argument.
//
// Every datagram carries a small envelope (magic, kind, sender, group) so
// receivers can attribute packets without reverse DNS of ephemeral ports.
type UDP struct {
	id   NodeID
	conn *net.UDPConn // unicast socket, also used to send multicast

	mu      sync.Mutex
	peers   map[NodeID]*net.UDPAddr
	groups  map[string]*udpGroup
	joined  map[string]bool // groups joined (native or fan-out)
	handler Handler
	closed  bool

	fanout bool // emulate multicast with unicast copies to all peers

	wg    sync.WaitGroup
	stats counters

	groupBase int // base UDP port for derived multicast groups

	// SendBatch scratch, guarded by batchMu: resolved datagrams, the
	// pooled envelopes to release, and the platform syscall state.
	batchMu   sync.Mutex
	batchOuts []wireDatagram
	batchEnvs [][]byte
	bw        batchWriter
}

type udpGroup struct {
	addr *net.UDPAddr
	conn *net.UDPConn
}

var _ Transport = (*UDP)(nil)
var _ Multicaster = (*UDP)(nil)
var _ BatchSender = (*UDP)(nil)

// envelope bytes.
const (
	udpMagic     = 0xA7
	udpUnicast   = 0
	udpMulticast = 1
)

// UDPOption customizes a UDP transport.
type UDPOption func(*UDP)

// WithGroupPortBase sets the first UDP port used for derived multicast
// group addresses (default 17000). Distinct deployments on one host must
// use distinct bases.
func WithGroupPortBase(port int) UDPOption {
	return func(u *UDP) { u.groupBase = port }
}

// WithUnicastFanout emulates group sends with one unicast copy per known
// peer, for networks that do not route IP multicast (§4.1: multicast is
// used "when the underlying network allows it"). Group delivery filtering
// still applies: only peers that joined the group see the packet.
func WithUnicastFanout() UDPOption {
	return func(u *UDP) { u.fanout = true }
}

// NewUDP binds a unicast socket for node id on bindAddr (e.g.
// "127.0.0.1:0") and records the initial peer address book.
func NewUDP(id NodeID, bindAddr string, peers map[NodeID]string, opts ...UDPOption) (*UDP, error) {
	if id == "" {
		return nil, fmt.Errorf("transport: empty node id: %w", ErrUnknownNode)
	}
	laddr, err := net.ResolveUDPAddr("udp4", bindAddr)
	if err != nil {
		return nil, fmt.Errorf("transport: resolve %q: %w", bindAddr, err)
	}
	conn, err := net.ListenUDP("udp4", laddr)
	if err != nil {
		return nil, fmt.Errorf("transport: bind %q: %w", bindAddr, err)
	}
	u := &UDP{
		id:        id,
		conn:      conn,
		peers:     make(map[NodeID]*net.UDPAddr, len(peers)),
		groups:    make(map[string]*udpGroup),
		joined:    make(map[string]bool),
		groupBase: 17000,
	}
	for _, opt := range opts {
		opt(u)
	}
	for peer, addr := range peers {
		if err := u.AddPeer(peer, addr); err != nil {
			_ = conn.Close()
			return nil, err
		}
	}
	u.wg.Add(1)
	go u.readLoop(conn, nil)
	return u, nil
}

// LocalAddr returns the bound unicast address, useful when binding port 0.
func (u *UDP) LocalAddr() string { return u.conn.LocalAddr().String() }

// AddPeer records or updates the unicast address of a peer node. It is
// idempotent: re-adding a known peer with a new address replaces the old
// one, so a bearer endpoint that moves at runtime (discovery advertising a
// fresh address) takes effect on the next Send.
func (u *UDP) AddPeer(id NodeID, addr string) error {
	if id == "" {
		return fmt.Errorf("transport: add peer: empty node id: %w", ErrUnknownNode)
	}
	uaddr, err := net.ResolveUDPAddr("udp4", addr)
	if err != nil {
		return fmt.Errorf("transport: resolve peer %q addr %q: %w", id, addr, err)
	}
	u.mu.Lock()
	defer u.mu.Unlock()
	u.peers[id] = uaddr
	return nil
}

// RemovePeer forgets a peer's unicast address. Subsequent Sends to it fail
// with ErrUnknownNode until a new AddPeer. Removing an unknown peer is a
// no-op.
func (u *UDP) RemovePeer(id NodeID) {
	u.mu.Lock()
	defer u.mu.Unlock()
	delete(u.peers, id)
}

// Node implements Transport.
func (u *UDP) Node() NodeID { return u.id }

// NativeMulticast implements Multicaster: false in fan-out mode, where a
// group send costs one wire packet per peer.
func (u *UDP) NativeMulticast() bool { return !u.fanout }

// SetHandler implements Transport.
func (u *UDP) SetHandler(h Handler) {
	u.mu.Lock()
	defer u.mu.Unlock()
	u.handler = h
}

func (u *UDP) currentHandler() Handler {
	u.mu.Lock()
	defer u.mu.Unlock()
	return u.handler
}

// GroupAddr derives the deterministic multicast address for a group name:
// 239.255.h/16 with a port in [base, base+512). Both ends derive the same
// address from the name alone, so no rendezvous service is needed.
func (u *UDP) GroupAddr(group string) *net.UDPAddr {
	h := fnv.New32a()
	_, _ = h.Write([]byte(group))
	s := h.Sum32()
	return &net.UDPAddr{
		IP:   net.IPv4(239, 255, byte(s>>8), byte(s)),
		Port: u.groupBase + int(s%512),
	}
}

// envelopeLen is the sealed size of one datagram: magic, kind, u32-prefixed
// sender id and group, payload.
func (u *UDP) envelopeLen(group string, payload []byte) int {
	return 10 + len(u.id) + len(group) + len(payload)
}

// seal appends the envelope onto dst (typically a pooled buffer the caller
// releases once the kernel has the bytes).
func (u *UDP) seal(dst []byte, kind uint8, group string, payload []byte) []byte {
	dst = append(dst, udpMagic, kind)
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(u.id)))
	dst = append(dst, u.id...)
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(group)))
	dst = append(dst, group...)
	return append(dst, payload...)
}

// Send implements Transport.
func (u *UDP) Send(to NodeID, payload []byte) error {
	u.mu.Lock()
	if u.closed {
		u.mu.Unlock()
		return fmt.Errorf("transport: send from %q: %w", u.id, ErrClosed)
	}
	addr := u.peers[to]
	u.mu.Unlock()
	if addr == nil {
		return fmt.Errorf("transport: send to %q: %w", to, ErrUnknownNode)
	}
	env := u.seal(bufpool.Get(u.envelopeLen("", payload)), udpUnicast, "", payload)
	u.stats.sent(len(payload))
	_, err := u.conn.WriteToUDP(env, addr)
	bufpool.Put(env) // the kernel copied the bytes; WriteToUDP retains nothing
	if err != nil {
		u.stats.dropped()
		return fmt.Errorf("transport: udp send to %q: %w", to, err)
	}
	u.stats.wire(len(payload))
	return nil
}

// SendGroup implements Transport.
func (u *UDP) SendGroup(group string, payload []byte) error {
	u.mu.Lock()
	if u.closed {
		u.mu.Unlock()
		return fmt.Errorf("transport: send from %q: %w", u.id, ErrClosed)
	}
	var peerAddrs []*net.UDPAddr
	if u.fanout {
		peerAddrs = make([]*net.UDPAddr, 0, len(u.peers))
		for _, addr := range u.peers {
			peerAddrs = append(peerAddrs, addr)
		}
	}
	u.mu.Unlock()
	env := u.seal(bufpool.Get(u.envelopeLen(group, payload)), udpMulticast, group, payload)
	u.stats.sent(len(payload))
	if u.fanout {
		for _, addr := range peerAddrs {
			if _, err := u.conn.WriteToUDP(env, addr); err != nil {
				u.stats.dropped()
				continue
			}
			u.stats.wire(len(payload))
		}
		bufpool.Put(env)
		return nil
	}
	_, err := u.conn.WriteToUDP(env, u.GroupAddr(group))
	bufpool.Put(env)
	if err != nil {
		u.stats.dropped()
		return fmt.Errorf("transport: udp multicast to %q: %w", group, err)
	}
	u.stats.wire(len(payload))
	return nil
}

// Join implements Transport: opens a multicast listener on the group's
// derived address, or just records membership in fan-out mode.
func (u *UDP) Join(group string) error {
	u.mu.Lock()
	defer u.mu.Unlock()
	if u.closed {
		return fmt.Errorf("transport: join from %q: %w", u.id, ErrClosed)
	}
	u.joined[group] = true
	if u.fanout {
		return nil
	}
	if _, joined := u.groups[group]; joined {
		return nil
	}
	gaddr := u.GroupAddr(group)
	conn, err := net.ListenMulticastUDP("udp4", nil, gaddr)
	if err != nil {
		return fmt.Errorf("transport: join group %q at %v: %w", group, gaddr, err)
	}
	g := &udpGroup{addr: gaddr, conn: conn}
	u.groups[group] = g
	u.wg.Add(1)
	go u.readLoop(conn, g)
	return nil
}

// Leave implements Transport. Leaving a group that was never joined (or
// already left) is a no-op; leaving after Close reports ErrClosed like the
// other operations.
func (u *UDP) Leave(group string) error {
	u.mu.Lock()
	defer u.mu.Unlock()
	if u.closed {
		return fmt.Errorf("transport: leave from %q: %w", u.id, ErrClosed)
	}
	delete(u.joined, group)
	g, joined := u.groups[group]
	if !joined {
		return nil
	}
	delete(u.groups, group)
	return g.conn.Close()
}

// Stats implements Transport.
func (u *UDP) Stats() Stats { return u.stats.snapshot() }

// Close implements Transport.
func (u *UDP) Close() error {
	u.mu.Lock()
	if u.closed {
		u.mu.Unlock()
		return nil
	}
	u.closed = true
	groups := u.groups
	u.groups = make(map[string]*udpGroup)
	u.mu.Unlock()

	_ = u.conn.Close()
	for _, g := range groups {
		_ = g.conn.Close()
	}
	u.wg.Wait()
	return nil
}

// maxDatagram bounds receive buffers; UDP payloads beyond typical MTU-sized
// frames are fragmented by the protocol layer, but loopback jumbo frames
// still fit here.
const maxDatagram = 64 << 10

func (u *UDP) readLoop(conn *net.UDPConn, g *udpGroup) {
	defer u.wg.Done()
	// A ring of pooled receive buffers. Where recvmmsg is available (Linux)
	// one syscall fills a run of them; elsewhere the ring is a single buffer
	// and read degenerates to one ReadFromUDP. Handlers see the buffers
	// directly (no per-datagram copy): each filled slot is wrapped in a
	// refcounted bufpool.Shared and delivered as Packet.Owner, so a handler
	// that needs the payload past its call Retains the buffer instead of
	// copying. The loop drops its own reference after the handler returns
	// and refills the slot from the pool — in steady state the consumer's
	// Release has already returned the previous buffer, so the ring cycles
	// through pooled storage without touching the GC.
	rd := newDatagramReader(conn)
	bufs := make([][]byte, recvRing)
	for i := range bufs {
		bufs[i] = bufpool.Get(maxDatagram)[:maxDatagram]
	}
	sizes := make([]int, recvRing)
	for {
		n, err := rd.read(bufs, sizes)
		if err != nil {
			for i := range bufs {
				bufpool.Put(bufs[i])
			}
			return // closed
		}
		for i := 0; i < n; i++ {
			owner := bufpool.Share(bufs[i][:sizes[i]])
			u.handleDatagram(bufs[i][:sizes[i]], owner)
			owner.Release()
			bufs[i] = bufpool.Get(maxDatagram)[:maxDatagram]
		}
	}
}

func (u *UDP) handleDatagram(data []byte, owner *bufpool.Shared) {
	r := encoding.NewReader(data)
	if r.Uint8() != udpMagic {
		u.stats.dropped()
		return
	}
	kind := r.Uint8()
	from := NodeID(internString(r.RawBytes()))
	group := internString(r.RawBytes())
	if r.Err() != nil || from == "" {
		u.stats.dropped()
		return
	}
	payload := r.Raw(r.Remaining())
	if kind == udpMulticast && from == u.id {
		// Multicast loopback echoes our own sends; the middleware's
		// local bypass already delivered them.
		return
	}
	if kind == udpMulticast {
		// Fan-out copies arrive on the unicast socket; deliver only if
		// this node joined the group.
		u.mu.Lock()
		member := u.joined[group]
		u.mu.Unlock()
		if !member {
			return
		}
	}
	h := u.currentHandler()
	if h == nil {
		u.stats.dropped()
		return
	}
	// No copy: payload aliases the pooled ring buffer, whose lifetime the
	// Owner reference controls (the Packet ownership contract).
	u.stats.recv(len(payload))
	pkt := Packet{From: from, Payload: payload, Owner: owner}
	if kind == udpMulticast {
		pkt.Group = group
	} else {
		pkt.To = u.id
	}
	h(pkt)
}

// wireDatagram is one resolved, sealed datagram awaiting transmission.
type wireDatagram struct {
	env  []byte // sealed envelope (pooled)
	addr *net.UDPAddr
	pay  int // payload bytes, for wire accounting
}

// SendBatch implements BatchSender: it seals every message into a pooled
// envelope, resolves addresses under one lock acquisition, and hands the
// whole run to the platform writer — sendmmsg on Linux, a WriteToUDP loop
// elsewhere. Group messages expand to their fan-out targets when the
// transport runs in fan-out mode.
func (u *UDP) SendBatch(msgs []BatchMessage) error {
	if len(msgs) == 0 {
		return nil
	}
	u.batchMu.Lock()
	defer u.batchMu.Unlock()
	outs := u.batchOuts[:0]
	envs := u.batchEnvs[:0]

	u.mu.Lock()
	if u.closed {
		u.mu.Unlock()
		return fmt.Errorf("transport: udp batch from %q: %w", u.id, ErrClosed)
	}
	var firstErr error
	for i := range msgs {
		m := &msgs[i]
		if m.Group != "" {
			env := u.seal(bufpool.Get(u.envelopeLen(m.Group, m.Payload)), udpMulticast, m.Group, m.Payload)
			envs = append(envs, env)
			u.stats.sent(len(m.Payload))
			if u.fanout {
				for _, addr := range u.peers {
					outs = append(outs, wireDatagram{env: env, addr: addr, pay: len(m.Payload)})
				}
			} else {
				outs = append(outs, wireDatagram{env: env, addr: u.GroupAddr(m.Group), pay: len(m.Payload)})
			}
			continue
		}
		addr, ok := u.peers[m.To]
		if !ok {
			u.stats.dropped()
			if firstErr == nil {
				firstErr = fmt.Errorf("transport: udp batch to %q: %w", m.To, ErrUnknownNode)
			}
			continue
		}
		env := u.seal(bufpool.Get(u.envelopeLen("", m.Payload)), udpUnicast, "", m.Payload)
		envs = append(envs, env)
		u.stats.sent(len(m.Payload))
		outs = append(outs, wireDatagram{env: env, addr: addr, pay: len(m.Payload)})
	}
	u.mu.Unlock()

	sent, werr := u.writeBatch(outs)
	for i := range outs {
		if i < sent {
			u.stats.wire(outs[i].pay)
		} else {
			u.stats.dropped()
		}
	}
	if werr != nil && firstErr == nil {
		firstErr = fmt.Errorf("transport: udp batch from %q: %w", u.id, werr)
	}

	// The kernel (or the fallback WriteToUDP loop) copied every envelope
	// it accepted; recycle them all.
	for i, env := range envs {
		bufpool.Put(env)
		envs[i] = nil
	}
	for i := range outs {
		outs[i] = wireDatagram{}
	}
	u.batchOuts = outs[:0]
	u.batchEnvs = envs[:0]
	return firstErr
}

// sequentialWrite is the portable datagram batch writer: one WriteToUDP per
// datagram. It reports how many datagrams were accepted before the first
// failure.
func sequentialWrite(conn *net.UDPConn, outs []wireDatagram) (int, error) {
	for i, out := range outs {
		if _, err := conn.WriteToUDP(out.env, out.addr); err != nil {
			return i, err
		}
	}
	return len(outs), nil
}
