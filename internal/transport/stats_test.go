package transport

import (
	"testing"
	"time"
)

// TestStatsUniformShape pins the one-shape contract of Transport.Stats
// across every implementation: after a delivered unicast send, the sender
// reports it under PacketsSent/BytesSent *and* PacketsWire/BytesWire, and
// the receiver reports it under PacketsRecv/BytesRecv. The container's
// link monitor and Node.LinkStats read these counters without knowing
// which substrate backs a bearer, so the shape must not vary.
func TestStatsUniformShape(t *testing.T) {
	const payload = "stats-probe"

	type endpoints struct {
		sender, receiver Transport
	}
	cases := []struct {
		name  string
		build func(t *testing.T) endpoints
	}{
		{"inproc", func(t *testing.T) endpoints {
			bus := NewBus()
			a, err := bus.Endpoint("a")
			if err != nil {
				t.Fatal(err)
			}
			b, err := bus.Endpoint("b")
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { _ = a.Close(); _ = b.Close() })
			return endpoints{a, b}
		}},
		{"udp", func(t *testing.T) endpoints {
			a, b := newUDPPair(t)
			return endpoints{a, b}
		}},
		{"tcp", func(t *testing.T) endpoints {
			a, err := NewTCP("a", "127.0.0.1:0", nil)
			if err != nil {
				t.Skipf("tcp unavailable: %v", err)
			}
			t.Cleanup(func() { _ = a.Close() })
			b, err := NewTCP("b", "127.0.0.1:0", nil)
			if err != nil {
				t.Skipf("tcp unavailable: %v", err)
			}
			t.Cleanup(func() { _ = b.Close() })
			if err := a.AddPeer("b", b.LocalAddr()); err != nil {
				t.Fatal(err)
			}
			return endpoints{a, b}
		}},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			eps := tc.build(t)
			col := newCollector()
			eps.receiver.SetHandler(col.handler())
			if err := eps.sender.Send("b", []byte(payload)); err != nil {
				t.Fatalf("Send: %v", err)
			}
			col.wait(t, 1, 2*time.Second)

			s := eps.sender.Stats()
			if s.PacketsSent != 1 || s.BytesSent != uint64(len(payload)) {
				t.Errorf("sender sent counters = %d pkts / %d B, want 1 / %d", s.PacketsSent, s.BytesSent, len(payload))
			}
			if s.PacketsWire != 1 || s.BytesWire != uint64(len(payload)) {
				t.Errorf("sender wire counters = %d pkts / %d B, want 1 / %d", s.PacketsWire, s.BytesWire, len(payload))
			}
			if s.PacketsDropped != 0 {
				t.Errorf("sender dropped = %d, want 0", s.PacketsDropped)
			}

			// Receiver-side counters may trail the handler call by a stats
			// update; poll briefly.
			deadline := time.Now().Add(time.Second)
			var r Stats
			for {
				r = eps.receiver.Stats()
				if r.PacketsRecv >= 1 || time.Now().After(deadline) {
					break
				}
				time.Sleep(time.Millisecond)
			}
			if r.PacketsRecv != 1 || r.BytesRecv != uint64(len(payload)) {
				t.Errorf("receiver recv counters = %d pkts / %d B, want 1 / %d", r.PacketsRecv, r.BytesRecv, len(payload))
			}
		})
	}
}
