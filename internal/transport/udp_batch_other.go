//go:build !linux || (!amd64 && !arm64)

package transport

import "net"

// Portable fallback: no vectored datagram syscalls, one syscall per
// datagram. SendBatch still buys the caller one lock acquisition and pooled
// sealing per run; the read loop uses a single reused buffer.

const recvRing = 1

type batchWriter struct{}

func (u *UDP) writeBatch(outs []wireDatagram) (int, error) {
	return sequentialWrite(u.conn, outs)
}

type datagramReader interface {
	read(bufs [][]byte, sizes []int) (int, error)
}

type singleReader struct{ conn *net.UDPConn }

func newDatagramReader(conn *net.UDPConn) datagramReader {
	return singleReader{conn}
}

func (r singleReader) read(bufs [][]byte, sizes []int) (int, error) {
	n, _, err := r.conn.ReadFromUDP(bufs[0])
	if err != nil {
		return 0, err
	}
	sizes[0] = n
	return 1, nil
}
