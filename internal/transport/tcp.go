package transport

import (
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"

	"uavmw/internal/encoding"
)

// TCP is the stream transport used for the primitives the paper maps onto
// TCP (§4.2 events, §4.3 remote invocation). Frames are length-prefixed on
// persistent connections; the transport dials lazily and keeps one outbound
// connection per peer. Group operations are unsupported — the paper never
// multicasts over TCP — so reliable fan-out above TCP is the event engine's
// job (one unicast per subscriber).
type TCP struct {
	id       NodeID
	listener net.Listener

	mu      sync.Mutex
	peers   map[NodeID]string
	conns   map[NodeID]*tcpConn // outbound, keyed by destination
	inbound map[net.Conn]struct{}
	handler Handler
	closed  bool

	wg    sync.WaitGroup
	stats counters
}

type tcpConn struct {
	mu   sync.Mutex // serializes writes
	conn net.Conn
}

var _ Transport = (*TCP)(nil)

// maxTCPFrame bounds inbound frame sizes against corrupt prefixes.
const maxTCPFrame = 16 << 20

// NewTCP starts a listener for node id on bindAddr and records the initial
// peer address book.
func NewTCP(id NodeID, bindAddr string, peers map[NodeID]string) (*TCP, error) {
	if id == "" {
		return nil, fmt.Errorf("transport: empty node id: %w", ErrUnknownNode)
	}
	ln, err := net.Listen("tcp4", bindAddr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %q: %w", bindAddr, err)
	}
	t := &TCP{
		id:       id,
		listener: ln,
		peers:    make(map[NodeID]string, len(peers)),
		conns:    make(map[NodeID]*tcpConn),
		inbound:  make(map[net.Conn]struct{}),
	}
	for peer, addr := range peers {
		t.peers[peer] = addr
	}
	t.wg.Add(1)
	go t.acceptLoop()
	return t, nil
}

// LocalAddr returns the bound listener address.
func (t *TCP) LocalAddr() string { return t.listener.Addr().String() }

// AddPeer records or updates the address of a peer node. Idempotent; an
// updated address applies to the next dial (an existing connection to the
// old address keeps serving until it drops).
func (t *TCP) AddPeer(id NodeID, addr string) error {
	if id == "" {
		return fmt.Errorf("transport: add peer: empty node id: %w", ErrUnknownNode)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.peers[id] = addr
	return nil
}

// RemovePeer forgets a peer's address and closes any outbound connection
// to it. Removing an unknown peer is a no-op.
func (t *TCP) RemovePeer(id NodeID) {
	t.mu.Lock()
	delete(t.peers, id)
	c := t.conns[id]
	delete(t.conns, id)
	t.mu.Unlock()
	if c != nil {
		_ = c.conn.Close()
	}
}

// Node implements Transport.
func (t *TCP) Node() NodeID { return t.id }

// SetHandler implements Transport.
func (t *TCP) SetHandler(h Handler) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.handler = h
}

func (t *TCP) currentHandler() Handler {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.handler
}

// Send implements Transport.
func (t *TCP) Send(to NodeID, payload []byte) error {
	conn, err := t.outbound(to)
	if err != nil {
		return err
	}
	frame := t.seal(payload)
	t.stats.sent(len(payload))

	conn.mu.Lock()
	_, err = conn.conn.Write(frame)
	conn.mu.Unlock()
	if err != nil {
		t.dropConn(to, conn)
		t.stats.dropped()
		return fmt.Errorf("transport: tcp send to %q: %w", to, err)
	}
	t.stats.wire(len(payload))
	return nil
}

func (t *TCP) seal(payload []byte) []byte {
	w := encoding.NewWriter(len(payload) + len(t.id) + 8)
	w.String(string(t.id))
	w.Raw(payload)
	body := w.Bytes()
	//wirepath:alloc stream framing copy; the TCP-like bearer is the E2 baseline, not the datagram fast path
	frame := make([]byte, 4+len(body))
	binary.BigEndian.PutUint32(frame, uint32(len(body)))
	copy(frame[4:], body)
	return frame
}

// outbound returns (dialing if needed) the connection to peer.
func (t *TCP) outbound(to NodeID) (*tcpConn, error) {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil, fmt.Errorf("transport: send from %q: %w", t.id, ErrClosed)
	}
	if c, ok := t.conns[to]; ok {
		t.mu.Unlock()
		return c, nil
	}
	addr, known := t.peers[to]
	t.mu.Unlock()
	if !known {
		return nil, fmt.Errorf("transport: send to %q: %w", to, ErrUnknownNode)
	}

	raw, err := net.Dial("tcp4", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: dial %q at %q: %w", to, addr, err)
	}
	c := &tcpConn{conn: raw}

	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		_ = raw.Close()
		return nil, fmt.Errorf("transport: send from %q: %w", t.id, ErrClosed)
	}
	if existing, ok := t.conns[to]; ok {
		// Lost a dial race; use the winner.
		t.mu.Unlock()
		_ = raw.Close()
		return existing, nil
	}
	t.conns[to] = c
	t.mu.Unlock()

	// Outbound connections also carry return traffic some peers choose to
	// send on them; read and dispatch it.
	t.wg.Add(1)
	go t.readLoop(raw)
	return c, nil
}

func (t *TCP) dropConn(to NodeID, c *tcpConn) {
	t.mu.Lock()
	if t.conns[to] == c {
		delete(t.conns, to)
	}
	t.mu.Unlock()
	_ = c.conn.Close()
}

// SendGroup implements Transport: unsupported on TCP.
func (t *TCP) SendGroup(string, []byte) error {
	return fmt.Errorf("transport: tcp: %w", ErrNoMulticast)
}

// Join implements Transport: unsupported on TCP.
func (t *TCP) Join(string) error {
	return fmt.Errorf("transport: tcp: %w", ErrNoMulticast)
}

// Leave implements Transport: unsupported on TCP.
func (t *TCP) Leave(string) error {
	return fmt.Errorf("transport: tcp: %w", ErrNoMulticast)
}

// Stats implements Transport.
func (t *TCP) Stats() Stats { return t.stats.snapshot() }

// Close implements Transport.
func (t *TCP) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	conns := t.conns
	t.conns = make(map[NodeID]*tcpConn)
	inbound := t.inbound
	t.inbound = make(map[net.Conn]struct{})
	t.mu.Unlock()

	_ = t.listener.Close()
	for _, c := range conns {
		_ = c.conn.Close()
	}
	for c := range inbound {
		_ = c.Close()
	}
	t.wg.Wait()
	return nil
}

func (t *TCP) acceptLoop() {
	defer t.wg.Done()
	for {
		conn, err := t.listener.Accept()
		if err != nil {
			return // closed
		}
		t.mu.Lock()
		if t.closed {
			t.mu.Unlock()
			_ = conn.Close()
			return
		}
		t.inbound[conn] = struct{}{}
		t.mu.Unlock()
		t.wg.Add(1)
		go func() {
			t.readLoop(conn)
			t.mu.Lock()
			delete(t.inbound, conn)
			t.mu.Unlock()
		}()
	}
}

func (t *TCP) readLoop(conn net.Conn) {
	defer t.wg.Done()
	defer func() { _ = conn.Close() }()
	var lenBuf [4]byte
	for {
		if _, err := io.ReadFull(conn, lenBuf[:]); err != nil {
			return
		}
		n := binary.BigEndian.Uint32(lenBuf[:])
		if n == 0 || n > maxTCPFrame {
			return // corrupt peer
		}
		//wirepath:alloc stream read buffer retained across the length-prefixed read
		body := make([]byte, n)
		if _, err := io.ReadFull(conn, body); err != nil {
			return
		}
		r := encoding.NewReader(body)
		from := NodeID(r.String())
		if r.Err() != nil || from == "" {
			t.stats.dropped()
			continue
		}
		payload := r.Raw(r.Remaining())
		h := t.currentHandler()
		if h == nil {
			t.stats.dropped()
			continue
		}
		t.stats.recv(len(payload))
		h(Packet{From: from, To: t.id, Payload: payload})
	}
}
