//go:build linux && (amd64 || arm64)

package transport

import (
	"fmt"
	"net"
	"syscall"
	"unsafe"
)

// Vectored datagram I/O via sendmmsg/recvmmsg. One syscall moves a run of
// datagrams in either direction, which is where the per-frame syscall cost
// of the wire path goes once encode and buffering stop allocating. Only the
// 64-bit ports are wired up: the mmsghdr layout below matches the kernel
// ABI where struct msghdr is 56 bytes and pointers are 8 — exactly the
// amd64/arm64 case the build tag selects. Other platforms use the portable
// one-datagram-per-syscall fallback.

// recvRing is how many receive buffers each read loop cycles through; one
// recvmmsg can fill all of them.
const recvRing = 8

// mmsghdr mirrors the kernel's struct mmsghdr: a msghdr plus the number of
// bytes the kernel moved for that slot.
type mmsghdr struct {
	hdr syscall.Msghdr
	n   uint32
	_   [4]byte
}

// batchWriter holds the sendmmsg scratch arrays, sized to the largest batch
// seen so a steady stream of batches costs no allocations. Guarded by
// UDP.batchMu.
type batchWriter struct {
	rc   syscall.RawConn
	hdrs []mmsghdr
	iovs []syscall.Iovec
	sas  []syscall.RawSockaddrInet4
}

// writeBatch transmits outs with as few sendmmsg calls as possible and
// reports how many datagrams the kernel accepted before any failure.
func (u *UDP) writeBatch(outs []wireDatagram) (int, error) {
	if len(outs) == 0 {
		return 0, nil
	}
	w := &u.bw
	if w.rc == nil {
		rc, err := u.conn.SyscallConn()
		if err != nil {
			return sequentialWrite(u.conn, outs)
		}
		w.rc = rc
	}
	if cap(w.hdrs) < len(outs) {
		w.hdrs = make([]mmsghdr, len(outs))
		w.iovs = make([]syscall.Iovec, len(outs))
		w.sas = make([]syscall.RawSockaddrInet4, len(outs))
	}
	hdrs := w.hdrs[:len(outs)]
	for i := range outs {
		ip := outs[i].addr.IP.To4()
		if ip == nil {
			// The socket is udp4; a non-v4 address here is a
			// programming error — fall back rather than corrupt.
			return sequentialWrite(u.conn, outs)
		}
		sa := &w.sas[i]
		sa.Family = syscall.AF_INET
		port := (*[2]byte)(unsafe.Pointer(&sa.Port))
		port[0] = byte(outs[i].addr.Port >> 8)
		port[1] = byte(outs[i].addr.Port)
		copy(sa.Addr[:], ip)
		iov := &w.iovs[i]
		iov.Base = &outs[i].env[0]
		iov.SetLen(len(outs[i].env))
		hdrs[i] = mmsghdr{hdr: syscall.Msghdr{
			Name:    (*byte)(unsafe.Pointer(sa)),
			Namelen: syscall.SizeofSockaddrInet4,
			Iov:     iov,
			Iovlen:  1,
		}}
	}
	sent := 0
	var serr error
	err := w.rc.Write(func(fd uintptr) bool {
		for sent < len(hdrs) {
			r1, _, errno := syscall.Syscall6(uintptr(sysSendmmsg), fd,
				uintptr(unsafe.Pointer(&hdrs[sent])), uintptr(len(hdrs)-sent), 0, 0, 0)
			switch errno {
			case 0:
				sent += int(r1)
			case syscall.EAGAIN:
				return false // wait for writability, then retry
			case syscall.EINTR:
				// retry
			default:
				serr = errno
				return true
			}
		}
		return true
	})
	if err != nil && serr == nil {
		serr = err
	}
	if serr != nil {
		return sent, fmt.Errorf("sendmmsg: %w", serr)
	}
	return sent, nil
}

// mmsgReader drains a socket with recvmmsg, filling a run of ring buffers
// per syscall.
type mmsgReader struct {
	rc   syscall.RawConn
	hdrs []mmsghdr
	iovs []syscall.Iovec
}

type singleReader struct{ conn *net.UDPConn }

func (r singleReader) read(bufs [][]byte, sizes []int) (int, error) {
	n, _, err := r.conn.ReadFromUDP(bufs[0])
	if err != nil {
		return 0, err
	}
	sizes[0] = n
	return 1, nil
}

type datagramReader interface {
	read(bufs [][]byte, sizes []int) (int, error)
}

func newDatagramReader(conn *net.UDPConn) datagramReader {
	rc, err := conn.SyscallConn()
	if err != nil {
		return singleReader{conn}
	}
	return &mmsgReader{
		rc:   rc,
		hdrs: make([]mmsghdr, recvRing),
		iovs: make([]syscall.Iovec, recvRing),
	}
}

func (r *mmsgReader) read(bufs [][]byte, sizes []int) (int, error) {
	n := len(bufs)
	if n > len(r.hdrs) {
		n = len(r.hdrs)
	}
	for i := 0; i < n; i++ {
		iov := &r.iovs[i]
		iov.Base = &bufs[i][0]
		iov.SetLen(len(bufs[i]))
		// Sender addresses are unused (identity rides in the envelope),
		// so no Name buffer is supplied.
		r.hdrs[i] = mmsghdr{hdr: syscall.Msghdr{Iov: iov, Iovlen: 1}}
	}
	got := 0
	var serr error
	err := r.rc.Read(func(fd uintptr) bool {
		for {
			r1, _, errno := syscall.Syscall6(uintptr(sysRecvmmsg), fd,
				uintptr(unsafe.Pointer(&r.hdrs[0])), uintptr(n), 0, 0, 0)
			switch errno {
			case 0:
				got = int(r1)
				return true
			case syscall.EAGAIN:
				return false // wait for readability
			case syscall.EINTR:
				// retry
			default:
				serr = errno
				return true
			}
		}
	})
	if err != nil {
		return 0, err // socket closed
	}
	if serr != nil {
		return 0, fmt.Errorf("recvmmsg: %w", serr)
	}
	for i := 0; i < got; i++ {
		sizes[i] = int(r.hdrs[i].n)
	}
	return got, nil
}
