// Package transport implements the PEPt "Transport" subsystem (§6 of the
// paper): moving protocol frames between nodes. The paper's container
// "abstracts the network access, allowing the middleware to be deployed in
// different networks" (§3); that abstraction is the Transport interface.
//
// Four implementations exist: an in-process bus (this file's sibling
// inproc.go) for same-host containers and tests, real UDP and TCP transports
// over the loopback/LAN, and the deterministic simulated network in package
// netsim used by the loss/latency experiments.
//
// # Buffer ownership
//
// The wire path recycles its buffers (internal/bufpool), so retention is a
// contract, not a convention:
//
//   - Send / SendGroup / SendBatch: the payload belongs to the caller and
//     is valid only for the duration of the call. A transport that delivers
//     asynchronously — enqueueing, simulating latency, fanning out on
//     another goroutine — must copy the payload before returning (see
//     bufpool.Copy). Synchronous transports (UDP, TCP) hand the bytes to
//     the kernel within the call and retain nothing.
//   - Receive: Packet.Payload belongs to the transport and is valid only
//     for the duration of the Handler call; the backing storage (typically
//     a pooled receive buffer) is reused for the next datagram. Handlers
//     that retain any part of it must copy — unless the packet carries an
//     Owner, in which case the handler may Retain the reference instead and
//     keep the payload alive past the call without copying (the ingress
//     pipeline's zero-copy handoff). The transport drops its own reference
//     when the handler returns; the last Release recycles the buffer.
package transport

import (
	"errors"
	"sync/atomic"

	"uavmw/internal/bufpool"
)

// NodeID identifies a container node on the network. The paper gives every
// node exactly one service container (§3), so node and container identity
// coincide.
type NodeID string

// Packet is one transport datagram. Payload is an opaque protocol frame.
type Packet struct {
	// From is the sending node.
	From NodeID
	// To is the destination node for unicast packets; empty for group
	// (multicast/broadcast) packets.
	To NodeID
	// Group is the multicast group name for group packets; empty for
	// unicast.
	Group string
	// Payload is the protocol frame. Receivers must not retain it past
	// the handler call unless they copy — or Retain Owner when it is set.
	Payload []byte
	// Owner, when non-nil, is the refcounted pooled buffer backing Payload.
	// A handler that needs the payload past its call Retains it and
	// Releases when done; handlers that consume synchronously ignore it.
	// Transports that deliver from GC-owned or shared storage (netsim's
	// one-copy multicast) leave it nil, and receivers needing ownership
	// copy as before.
	Owner *bufpool.Shared
}

// Handler processes one received packet on the transport's dispatch
// goroutine. Handlers must be quick; long work belongs on the container
// scheduler.
type Handler func(pkt Packet)

// Transport moves packets between nodes. Implementations must be safe for
// concurrent use.
type Transport interface {
	// Node returns the local node identity.
	Node() NodeID
	// Send transmits a unicast packet to the named node.
	Send(to NodeID, payload []byte) error
	// SendGroup transmits one packet to every current member of the
	// group, exploiting native multicast when the underlying network has
	// it (§4.1: "one packet sent can arrive to multiple nodes").
	SendGroup(group string, payload []byte) error
	// Join subscribes the local node to a multicast group.
	Join(group string) error
	// Leave unsubscribes the local node from a multicast group.
	Leave(group string) error
	// SetHandler installs the receive callback. It must be called before
	// traffic is expected; packets arriving with no handler are counted
	// as dropped.
	SetHandler(h Handler)
	// Stats returns a snapshot of traffic counters.
	Stats() Stats
	// Close releases resources and stops the dispatch goroutines.
	// Implementations must be idempotent.
	Close() error
}

// BatchMessage is one datagram in a BatchSender call: exactly one of To or
// Group is set, mirroring Send/SendGroup.
type BatchMessage struct {
	To      NodeID
	Group   string
	Payload []byte
}

// BatchSender is implemented by transports that can put several datagrams
// on the wire in one call (sendmmsg on Linux UDP). The egress drainers feed
// it runs of already-paced, priority-ordered datagrams, amortizing the
// per-datagram syscall cost. Semantics match issuing the Sends in slice
// order; a non-nil error means one or more messages failed (best effort —
// datagram transports don't guarantee delivery anyway). Payloads follow the
// Send ownership rule: valid only for the duration of the call. Transports
// without a native batching primitive simply don't implement the interface
// and callers fall back to one Send per datagram.
type BatchSender interface {
	SendBatch(msgs []BatchMessage) error
}

// Multicaster is implemented by transports whose SendGroup puts a single
// packet on the wire regardless of group size. The variable engine uses it
// to choose between native multicast and unicast fan-out.
type Multicaster interface {
	NativeMulticast() bool
}

// PeerBook is implemented by transports that resolve unicast destinations
// through an explicit address book (UDP, TCP). The container's bearer
// plane uses it to track peers whose per-bearer addresses arrive through
// discovery: AddPeer is idempotent and re-adding a peer with a new address
// updates it (a bearer's endpoint can move at runtime — a UAV re-acquiring
// WiFi on a different ground segment); RemovePeer drops the entry so
// frames to a departed peer fail fast instead of dialing a stale address.
// Substrates with a global address book (bus, netsim) don't implement it.
type PeerBook interface {
	AddPeer(id NodeID, addr string) error
	RemovePeer(id NodeID)
}

// Addressable is implemented by transports with a dialable local address
// (UDP, TCP). The container advertises it in the bearer's discovery record
// so remote peers can populate their PeerBook for this link.
type Addressable interface {
	LocalAddr() string
}

// Stats counts transport traffic. "Wire" counters measure what crosses the
// network medium: one multicast send is one wire packet however many nodes
// receive it, which is exactly the §4.1 bandwidth argument experiment E3
// measures.
type Stats struct {
	// PacketsSent counts Send/SendGroup calls accepted.
	PacketsSent uint64
	// BytesSent counts payload bytes accepted for sending.
	BytesSent uint64
	// PacketsWire counts packets placed on the medium.
	PacketsWire uint64
	// BytesWire counts payload bytes placed on the medium.
	BytesWire uint64
	// PacketsRecv counts packets delivered to the handler.
	PacketsRecv uint64
	// BytesRecv counts payload bytes delivered to the handler.
	BytesRecv uint64
	// PacketsDropped counts packets lost: no handler installed, queue
	// overflow, simulated loss, or unreachable destination.
	PacketsDropped uint64
}

// Add accumulates other into s.
func (s *Stats) Add(other Stats) {
	s.PacketsSent += other.PacketsSent
	s.BytesSent += other.BytesSent
	s.PacketsWire += other.PacketsWire
	s.BytesWire += other.BytesWire
	s.PacketsRecv += other.PacketsRecv
	s.BytesRecv += other.BytesRecv
	s.PacketsDropped += other.PacketsDropped
}

// Errors shared by transport implementations.
var (
	// ErrClosed reports use of a closed transport.
	ErrClosed = errors.New("transport closed")
	// ErrUnknownNode reports a unicast destination with no known address.
	ErrUnknownNode = errors.New("unknown node")
	// ErrNoMulticast reports SendGroup on a transport without group
	// support (TCP).
	ErrNoMulticast = errors.New("multicast unsupported")
	// ErrDuplicateNode reports two endpoints claiming one node identity.
	ErrDuplicateNode = errors.New("duplicate node id")
)

// counters is the lock-free implementation backing Stats snapshots.
type counters struct {
	packetsSent    atomic.Uint64
	bytesSent      atomic.Uint64
	packetsWire    atomic.Uint64
	bytesWire      atomic.Uint64
	packetsRecv    atomic.Uint64
	bytesRecv      atomic.Uint64
	packetsDropped atomic.Uint64
}

func (c *counters) snapshot() Stats {
	return Stats{
		PacketsSent:    c.packetsSent.Load(),
		BytesSent:      c.bytesSent.Load(),
		PacketsWire:    c.packetsWire.Load(),
		BytesWire:      c.bytesWire.Load(),
		PacketsRecv:    c.packetsRecv.Load(),
		BytesRecv:      c.bytesRecv.Load(),
		PacketsDropped: c.packetsDropped.Load(),
	}
}

func (c *counters) sent(n int) {
	c.packetsSent.Add(1)
	c.bytesSent.Add(uint64(n))
}

func (c *counters) wire(n int) {
	c.packetsWire.Add(1)
	c.bytesWire.Add(uint64(n))
}

func (c *counters) recv(n int) {
	c.packetsRecv.Add(1)
	c.bytesRecv.Add(uint64(n))
}

func (c *counters) dropped() {
	c.packetsDropped.Add(1)
}
