// Package events implements the paper's §4.2 communication primitive:
// publish/subscribe notifications with guaranteed delivery to every
// subscribed service. "The utility of events is to inform of punctual and
// important facts" — alarms, waypoint arrivals, triggers for
// pre-programmed actions.
//
// Delivery is unicast per subscriber (the paper maps events over TCP or
// over UDP with application-level acknowledgment and retransmission). The
// subscriber set is maintained at the publisher: subscribers register with
// a reliable MTSubscribe and refresh it periodically, so a restarted
// publisher relearns its audience within one refresh interval.
package events

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"uavmw/internal/fabric"
	"uavmw/internal/naming"
	"uavmw/internal/presentation"
	"uavmw/internal/protocol"
	"uavmw/internal/qos"
	"uavmw/internal/transport"
)

// Errors.
var (
	// ErrDuplicateName reports a second publisher of a topic in one node.
	ErrDuplicateName = errors.New("event topic already offered")
	// ErrNoPublisher reports a subscribe for a topic with no provider.
	ErrNoPublisher = errors.New("no event publisher")
	// ErrPartialDelivery reports an event some subscribers did not
	// acknowledge; the paper's degraded-mode signal.
	ErrPartialDelivery = errors.New("event not delivered to all subscribers")
	// ErrClosed reports use of a closed handle.
	ErrClosed = errors.New("event handle closed")
	// ErrTypeMismatch reports subscriber/publisher type disagreement.
	ErrTypeMismatch = errors.New("event type mismatch")
)

// Engine is the per-container event runtime.
type Engine struct {
	f fabric.Fabric

	mu   sync.Mutex
	pubs map[string]*Publisher
	subs map[string][]*Subscription
}

// New builds the engine for a container.
func New(f fabric.Fabric) *Engine {
	return &Engine{
		f:    f,
		pubs: make(map[string]*Publisher),
		subs: make(map[string][]*Subscription),
	}
}

// Offer registers a publisher for topic with an optional payload type (nil
// means the event carries no data — "events can ... have meaning by
// themselves").
func (e *Engine) Offer(topic, service string, t *presentation.Type, q qos.EventQoS) (*Publisher, error) {
	if t != nil {
		if err := t.Validate(); err != nil {
			return nil, err
		}
	}
	if err := q.Validate(); err != nil {
		return nil, err
	}
	q = q.Normalize()
	e.mu.Lock()
	defer e.mu.Unlock()
	if _, dup := e.pubs[topic]; dup {
		return nil, fmt.Errorf("events: %q: %w", topic, ErrDuplicateName)
	}
	p := &Publisher{
		engine:      e,
		topic:       topic,
		service:     service,
		typ:         t,
		q:           q,
		subscribers: make(map[transport.NodeID]time.Time),
	}
	e.pubs[topic] = p
	return p, nil
}

// Publisher is the provider-side handle of one event topic.
type Publisher struct {
	engine  *Engine
	topic   string
	service string
	typ     *presentation.Type // nil = no payload
	q       qos.EventQoS

	mu          sync.Mutex
	subscribers map[transport.NodeID]time.Time // last refresh
	seq         uint64
	closed      bool

	published uint64
	failures  uint64
}

// subscriberTTL drops remote subscribers that stop refreshing (their node
// died without unsubscribing).
const subscriberTTL = 5 * time.Second

// Topic returns the event topic name.
func (p *Publisher) Topic() string { return p.topic }

// Subscribers returns the current remote subscriber nodes.
func (p *Publisher) Subscribers() []transport.NodeID {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]transport.NodeID, 0, len(p.subscribers))
	for node := range p.subscribers {
		out = append(out, node)
	}
	return out
}

// Publish delivers v to every subscriber and blocks until all acknowledge,
// the context expires, or a subscriber exhausts its retries. Local
// subscribers are delivered directly (bypass). On partial failure the
// failed subscribers are dropped from the set (the paper's middleware
// "detects the situation" and continues degraded) and ErrPartialDelivery
// is returned with the count.
func (p *Publisher) Publish(ctx context.Context, v any) error {
	var (
		payload []byte
		cv      any
		err     error
	)
	if p.typ != nil {
		cv, err = presentation.Coerce(p.typ, v)
		if err != nil {
			return err
		}
		payload, err = p.engine.f.Encoding().Marshal(p.typ, cv)
		if err != nil {
			return err
		}
	} else if v != nil {
		return fmt.Errorf("events: %q carries no payload: %w", p.topic, ErrTypeMismatch)
	}

	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return fmt.Errorf("events: %q: %w", p.topic, ErrClosed)
	}
	p.seq++
	seq := p.seq
	now := time.Now()
	targets := make([]transport.NodeID, 0, len(p.subscribers))
	for node, refreshed := range p.subscribers {
		if now.Sub(refreshed) > subscriberTTL {
			delete(p.subscribers, node)
			continue
		}
		targets = append(targets, node)
	}
	p.published++
	p.mu.Unlock()

	// Local bypass.
	p.engine.deliverLocal(p.topic, cv, now)

	if len(targets) == 0 {
		return nil
	}

	type outcome struct {
		node transport.NodeID
		err  error
	}
	results := make(chan outcome, len(targets))
	for _, node := range targets {
		frame := &protocol.Frame{
			Type:     protocol.MTEvent,
			Encoding: p.engine.f.Encoding().ID(),
			Priority: p.q.Priority,
			Channel:  p.topic,
			Seq:      p.engine.f.NextSeq(),
			Payload:  payload,
		}
		node := node
		p.engine.f.SendReliable(node, frame, p.q.Reliability, func(err error) {
			results <- outcome{node: node, err: err}
		})
	}
	_ = seq

	failed := 0
	for range targets {
		select {
		case res := <-results:
			if res.err != nil {
				failed++
				p.dropSubscriber(res.node)
			}
		case <-ctx.Done():
			return fmt.Errorf("events: publish %q: %w", p.topic, ctx.Err())
		}
	}
	if failed > 0 {
		p.mu.Lock()
		p.failures += uint64(failed)
		p.mu.Unlock()
		return fmt.Errorf("events: %q: %d of %d subscribers unreachable: %w",
			p.topic, failed, len(targets), ErrPartialDelivery)
	}
	return nil
}

func (p *Publisher) dropSubscriber(node transport.NodeID) {
	p.mu.Lock()
	defer p.mu.Unlock()
	delete(p.subscribers, node)
}

// Stats reports published event and failed-subscriber counts.
func (p *Publisher) Stats() (published, failures uint64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.published, p.failures
}

// Close withdraws the publisher.
func (p *Publisher) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	p.mu.Unlock()
	p.engine.mu.Lock()
	delete(p.engine.pubs, p.topic)
	p.engine.mu.Unlock()
}

// Record returns the naming record for announcements.
func (p *Publisher) Record() naming.Record {
	sig := ""
	if p.typ != nil {
		sig = p.typ.String()
	}
	return naming.Record{
		Kind:    naming.KindEvent,
		Name:    p.topic,
		Service: p.service,
		Node:    p.engine.f.Self(),
		TypeSig: sig,
	}
}

// Handler consumes one event occurrence.
type Handler func(v any, from transport.NodeID)

// Subscription is the consumer-side handle of one topic.
type Subscription struct {
	engine  *Engine
	topic   string
	typ     *presentation.Type
	q       qos.EventQoS
	handler Handler

	mu       sync.Mutex
	provider transport.NodeID
	closed   bool
	received uint64
}

// Subscribe registers handler for topic. The subscription is announced
// reliably to the current publisher and re-announced on refresh, so it
// survives publisher restarts.
func (e *Engine) Subscribe(topic string, t *presentation.Type, q qos.EventQoS, h Handler) (*Subscription, error) {
	if t != nil {
		if err := t.Validate(); err != nil {
			return nil, err
		}
	}
	if err := q.Validate(); err != nil {
		return nil, err
	}
	q = q.Normalize()
	if h == nil {
		return nil, fmt.Errorf("events: nil handler for %q: %w", topic, ErrTypeMismatch)
	}
	s := &Subscription{engine: e, topic: topic, typ: t, q: q, handler: h}

	e.mu.Lock()
	e.subs[topic] = append(e.subs[topic], s)
	e.mu.Unlock()

	// Register with the remote publisher if one exists; a local-only
	// topic needs no frames. Missing publishers are not an error — the
	// refresh loop will register when one appears (startup ordering).
	s.register()
	return s, nil
}

// register sends MTSubscribe to the current provider, if any and not local.
func (s *Subscription) register() {
	e := s.engine
	e.mu.Lock()
	_, local := e.pubs[s.topic]
	e.mu.Unlock()
	if local {
		return
	}
	rec, err := e.f.Directory().Select(naming.KindEvent, s.topic, qos.BindDynamic, "")
	if err != nil {
		return
	}
	if s.typ != nil && rec.TypeSig != "" && rec.TypeSig != s.typ.String() {
		return // incompatible publisher; skip registration
	}
	s.mu.Lock()
	s.provider = rec.Node
	s.mu.Unlock()
	frame := &protocol.Frame{
		Type:     protocol.MTSubscribe,
		Priority: qos.PriorityHigh,
		Channel:  s.topic,
		Seq:      e.f.NextSeq(),
	}
	e.f.SendReliable(rec.Node, frame, qos.ReliableARQ, nil)
}

// Refresh re-registers every remote subscription; the container calls it on
// its announce tick so publisher restarts relearn subscribers.
func (e *Engine) Refresh() {
	e.mu.Lock()
	var all []*Subscription
	for _, list := range e.subs {
		all = append(all, list...)
	}
	e.mu.Unlock()
	for _, s := range all {
		s.mu.Lock()
		closed := s.closed
		s.mu.Unlock()
		if !closed {
			s.register()
		}
	}
}

// Received reports delivered occurrence count.
func (s *Subscription) Received() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.received
}

// Close detaches the subscription and unsubscribes from the publisher.
func (s *Subscription) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	provider := s.provider
	s.mu.Unlock()

	e := s.engine
	e.mu.Lock()
	list := e.subs[s.topic]
	for i, sub := range list {
		if sub == s {
			list = append(list[:i], list[i+1:]...)
			break
		}
	}
	if len(list) == 0 {
		delete(e.subs, s.topic)
	} else {
		e.subs[s.topic] = list
	}
	remaining := len(list)
	e.mu.Unlock()

	if remaining == 0 && provider != "" && provider != e.f.Self() {
		frame := &protocol.Frame{
			Type:     protocol.MTUnsubscribe,
			Priority: qos.PriorityHigh,
			Channel:  s.topic,
			Seq:      e.f.NextSeq(),
		}
		e.f.SendReliable(provider, frame, qos.ReliableARQ, nil)
	}
}

// deliverLocal dispatches an occurrence to same-container subscribers.
func (e *Engine) deliverLocal(topic string, v any, _ time.Time) {
	e.mu.Lock()
	subs := append([]*Subscription(nil), e.subs[topic]...)
	self := e.f.Self()
	e.mu.Unlock()
	for _, s := range subs {
		s.dispatch(presentation.DeepCopy(v), self)
	}
}

func (s *Subscription) dispatch(v any, from transport.NodeID) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.received++
	h := s.handler
	pr := s.q.Priority
	s.mu.Unlock()
	_ = s.engine.f.Schedule(pr, func() { h(v, from) })
}

// HandleSubscribe processes a remote MTSubscribe.
func (e *Engine) HandleSubscribe(from transport.NodeID, fr *protocol.Frame) {
	e.mu.Lock()
	pub := e.pubs[fr.Channel]
	e.mu.Unlock()
	if pub == nil {
		return
	}
	pub.mu.Lock()
	defer pub.mu.Unlock()
	if !pub.closed {
		pub.subscribers[from] = time.Now()
	}
}

// HandleUnsubscribe processes a remote MTUnsubscribe.
func (e *Engine) HandleUnsubscribe(from transport.NodeID, fr *protocol.Frame) {
	e.mu.Lock()
	pub := e.pubs[fr.Channel]
	e.mu.Unlock()
	if pub == nil {
		return
	}
	pub.dropSubscriber(from)
}

// HandleEvent processes an incoming MTEvent occurrence.
func (e *Engine) HandleEvent(from transport.NodeID, fr *protocol.Frame) {
	e.mu.Lock()
	subs := append([]*Subscription(nil), e.subs[fr.Channel]...)
	e.mu.Unlock()
	if len(subs) == 0 {
		return
	}
	enc := e.f.Encoding()
	if len(fr.Payload) > 0 && fr.Encoding != enc.ID() {
		return
	}
	for _, s := range subs {
		var v any
		if s.typ != nil && len(fr.Payload) > 0 {
			decoded, err := enc.Unmarshal(s.typ, fr.Payload)
			if err != nil {
				continue
			}
			v = decoded
		}
		s.dispatch(v, from)
	}
}

// PeerGone drops a failed node from every publisher's subscriber set.
func (e *Engine) PeerGone(node transport.NodeID) {
	e.mu.Lock()
	pubs := make([]*Publisher, 0, len(e.pubs))
	for _, p := range e.pubs {
		pubs = append(pubs, p)
	}
	e.mu.Unlock()
	for _, p := range pubs {
		p.dropSubscriber(node)
	}
}

// Records lists this node's offered topics for announcements.
func (e *Engine) Records() []naming.Record {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]naming.Record, 0, len(e.pubs))
	for _, p := range e.pubs {
		out = append(out, p.Record())
	}
	return out
}
