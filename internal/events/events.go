// Package events implements the paper's §4.2 communication primitive:
// publish/subscribe notifications with guaranteed delivery to every
// subscribed service. "The utility of events is to inform of punctual and
// important facts" — alarms, waypoint arrivals, triggers for
// pre-programmed actions.
//
// Two delivery modes exist, selected by qos.EventQoS.Delivery:
//
//   - Unicast (default): the paper's baseline mapping. Each occurrence is
//     sent once per subscriber over TCP or over UDP with application-level
//     acknowledgment and retransmission; Publish blocks until every
//     subscriber acknowledges.
//   - Multicast: one group-addressed frame per occurrence regardless of
//     audience size (§4.1: "one packet sent can arrive to multiple
//     nodes"). Occurrences carry a per-topic sequence number; subscribers
//     detect gaps and reclaim lost occurrences with MTEventNack, answered
//     by unicast retransmissions from the publisher's replay buffer over
//     the ARQ engine.
//
// The subscriber set is maintained at the publisher: subscribers register
// with a reliable MTSubscribe and refresh it periodically, so a restarted
// publisher relearns its audience within one refresh interval.
package events

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"uavmw/internal/clock"
	"uavmw/internal/fabric"
	"uavmw/internal/metrics"
	"uavmw/internal/naming"
	"uavmw/internal/presentation"
	"uavmw/internal/protocol"
	"uavmw/internal/qos"
	"uavmw/internal/transport"
	"uavmw/internal/uerr"
)

// Event wire-path error codes.
var (
	codeEventPublish = uerr.Register("events.publish", uerr.CatSend)
	codeEventPartial = uerr.Register("events.partial_delivery", uerr.CatSend)
	codeEventLeave   = uerr.Register("events.leave_group", uerr.CatResource)
	codeEventShed    = uerr.Register("events.dispatch_shed", uerr.CatAdmission)
)

// Errors.
var (
	// ErrDuplicateName reports a second publisher of a topic in one node.
	ErrDuplicateName = errors.New("event topic already offered")
	// ErrNoPublisher reports a subscribe for a topic with no provider.
	ErrNoPublisher = errors.New("no event publisher")
	// ErrPartialDelivery reports an event some subscribers did not
	// acknowledge; the paper's degraded-mode signal.
	ErrPartialDelivery = errors.New("event not delivered to all subscribers")
	// ErrClosed reports use of a closed handle.
	ErrClosed = errors.New("event handle closed")
	// ErrTypeMismatch reports subscriber/publisher type disagreement.
	ErrTypeMismatch = errors.New("event type mismatch")
)

// numShards partitions the per-topic state so publishers and the receive
// path of unrelated topics never contend on one engine-wide mutex. Must be
// a power of two.
const numShards = 16

// shard holds the registries of the topics hashed onto it.
type shard struct {
	mu       sync.Mutex
	pubs     map[string]*Publisher
	subs     map[string][]*Subscription
	trackers map[string]map[transport.NodeID]*seqTracker
}

// Engine is the per-container event runtime.
type Engine struct {
	f      fabric.Fabric
	clk    clock.Clock
	reg    *metrics.Registry
	shards [numShards]shard
}

// New builds the engine for a container.
func New(f fabric.Fabric) *Engine {
	clk := clock.Clock(clock.Real{})
	if c, ok := f.(fabric.Clocked); ok {
		clk = clock.Or(c.Clock())
	}
	e := &Engine{f: f, clk: clk, reg: fabric.MetricsOf(f)}
	for i := range e.shards {
		e.shards[i].pubs = make(map[string]*Publisher)
		e.shards[i].subs = make(map[string][]*Subscription)
		e.shards[i].trackers = make(map[string]map[transport.NodeID]*seqTracker)
	}
	return e
}

// shardOf maps a topic onto its shard (inline FNV-1a, no allocation).
func (e *Engine) shardOf(topic string) *shard {
	h := uint32(2166136261)
	for i := 0; i < len(topic); i++ {
		h ^= uint32(topic[i])
		h *= 16777619
	}
	return &e.shards[h&(numShards-1)]
}

// Buffer pools for the publish hot path. Pooled buffers hold the assembled
// event payload (per-topic seq + encoded body); they are safe to recycle as
// soon as the fabric send returns because frame encoding copies the payload
// into the wire buffer. Frames are pooled under the same contract: the
// fabric must not retain the *protocol.Frame past the call.
var (
	//wirepath:alloc pool-miss constructor; amortized across reuses
	payloadPool = sync.Pool{New: func() any { b := make([]byte, 0, 512); return &b }}
	framePool   = sync.Pool{New: func() any { return new(protocol.Frame) }}
)

func getFrame() *protocol.Frame  { return framePool.Get().(*protocol.Frame) }
func putFrame(f *protocol.Frame) { *f = protocol.Frame{}; framePool.Put(f) }

// Offer registers a publisher for topic with an optional payload type (nil
// means the event carries no data — "events can ... have meaning by
// themselves").
func (e *Engine) Offer(topic, service string, t *presentation.Type, q qos.EventQoS) (*Publisher, error) {
	if t != nil {
		if err := t.Validate(); err != nil {
			return nil, err
		}
	}
	if err := q.Validate(); err != nil {
		return nil, err
	}
	q = q.Normalize()
	sh := e.shardOf(topic)
	sh.mu.Lock()
	if _, dup := sh.pubs[topic]; dup {
		sh.mu.Unlock()
		return nil, fmt.Errorf("events: %q: %w", topic, ErrDuplicateName)
	}
	lb := metrics.L("topic", topic)
	p := &Publisher{
		engine:      e,
		topic:       topic,
		service:     service,
		typ:         t,
		q:           q,
		id:          protocol.NewIncarnation(),
		subscribers: make(map[transport.NodeID]time.Time),
		published:   e.reg.Counter("events", "published", lb),
		failures:    e.reg.Counter("events", "subscriber_failures", lb),
		repairs:     e.reg.Counter("events", "repairs", lb),
	}
	if q.Delivery == qos.DeliverMulticast {
		p.replay = newReplayRing(replayDepth)
	}
	sh.pubs[topic] = p
	sh.mu.Unlock()
	e.f.OfferChanged()
	return p, nil
}

// replayDepth is how many recent occurrences a multicast publisher keeps
// for NACK repair. Gaps older than this are unrecoverable (the subscriber
// counts them as lost).
const replayDepth = 128

// replayRing is a fixed-size buffer of recent occurrences, indexed by
// per-topic sequence.
type replayRing struct {
	entries []replayEntry
}

type replayEntry struct {
	seq  uint64
	body []byte
}

func newReplayRing(depth int) *replayRing {
	return &replayRing{entries: make([]replayEntry, depth)}
}

func (r *replayRing) put(seq uint64, body []byte) {
	e := &r.entries[seq%uint64(len(r.entries))]
	// Reuse the slot's storage when it fits to avoid re-allocating on
	// every publish.
	e.seq = seq
	e.body = append(e.body[:0], body...)
}

func (r *replayRing) get(seq uint64) ([]byte, bool) {
	e := &r.entries[seq%uint64(len(r.entries))]
	if e.seq != seq || seq == 0 {
		return nil, false
	}
	return e.body, true
}

// Publisher is the provider-side handle of one event topic.
type Publisher struct {
	engine  *Engine
	topic   string
	service string
	typ     *presentation.Type // nil = no payload
	q       qos.EventQoS

	// id is the publisher incarnation carried in every occurrence so
	// subscribers reset their sequence trackers when a topic's publisher
	// restarts with fresh numbering.
	id uint32

	mu          sync.Mutex
	subscribers map[transport.NodeID]time.Time // last refresh
	seq         uint64                         // per-topic occurrence sequence
	replay      *replayRing                    // multicast mode only
	closed      bool

	// Registry handles ("events" component, labeled by topic); the
	// Stats/Repairs accessors are views over the same series the node's
	// MetricsSnapshot exports.
	published *metrics.Counter
	failures  *metrics.Counter
	repairs   *metrics.Counter // occurrences retransmitted on NACK
}

// subscriberTTL drops remote subscribers that stop refreshing (their node
// died without unsubscribing).
const subscriberTTL = 5 * time.Second

// Topic returns the event topic name.
func (p *Publisher) Topic() string { return p.topic }

// Subscribers returns the current remote subscriber nodes.
func (p *Publisher) Subscribers() []transport.NodeID {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]transport.NodeID, 0, len(p.subscribers))
	for node := range p.subscribers {
		out = append(out, node)
	}
	return out
}

// Publish delivers v to every subscriber. Local subscribers are delivered
// directly (bypass).
//
// In unicast mode the call blocks until all subscribers acknowledge, the
// context expires, or a subscriber exhausts its retries. On partial failure
// the failed subscribers are dropped from the set (the paper's middleware
// "detects the situation" and continues degraded) and ErrPartialDelivery is
// returned with the count. On context expiry the outcomes that completed
// before cancellation are still accounted in Stats and unreachable
// subscribers among them dropped.
//
// In multicast mode the occurrence is encoded once and sent as one
// group-addressed frame; delivery gaps are repaired asynchronously through
// subscriber NACKs, so the call does not block on acknowledgment.
func (p *Publisher) Publish(ctx context.Context, v any) error {
	var (
		body []byte
		cv   any
		err  error
	)
	if p.typ != nil {
		cv, err = presentation.Coerce(p.typ, v)
		if err != nil {
			return err
		}
		body, err = p.engine.f.Encoding().Marshal(p.typ, cv)
		if err != nil {
			return err
		}
	} else if v != nil {
		return fmt.Errorf("events: %q carries no payload: %w", p.topic, ErrTypeMismatch)
	}

	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return fmt.Errorf("events: %q: %w", p.topic, ErrClosed)
	}
	p.seq++
	seq := p.seq
	now := p.engine.clk.Now()
	targets := make([]transport.NodeID, 0, len(p.subscribers))
	for node, refreshed := range p.subscribers {
		if now.Sub(refreshed) > subscriberTTL {
			delete(p.subscribers, node)
			continue
		}
		targets = append(targets, node)
	}
	p.published.Inc()
	if p.replay != nil {
		p.replay.put(seq, body)
	}
	p.mu.Unlock()

	// Local bypass.
	p.engine.deliverLocal(p.topic, cv, now)

	if len(targets) == 0 {
		return nil
	}
	if p.q.Delivery == qos.DeliverMulticast {
		return p.publishGroup(seq, body)
	}
	return p.publishUnicast(ctx, seq, body, targets)
}

// publishGroup sends one group-addressed frame for the occurrence.
func (p *Publisher) publishGroup(seq uint64, body []byte) error {
	bufp := payloadPool.Get().(*[]byte)
	payload := protocol.EncodeEventPayload(p.id, seq, body, *bufp)
	frame := getFrame()
	frame.Type = protocol.MTEvent
	frame.Encoding = p.engine.f.Encoding().ID()
	frame.Priority = p.q.Priority
	frame.Channel = p.topic
	frame.Seq = p.engine.f.NextSeq()
	frame.Payload = payload
	err := p.engine.f.SendGroup(fabric.EventGroup(p.topic), frame)
	putFrame(frame)
	*bufp = payload[:0]
	payloadPool.Put(bufp)
	if err != nil {
		p.failures.Inc()
		return uerr.Wrapf(p.engine.reg, codeEventPublish, err, "publish %q", p.topic)
	}
	return nil
}

// publishUnicast performs the blocking per-subscriber reliable fan-out.
func (p *Publisher) publishUnicast(ctx context.Context, seq uint64, body []byte, targets []transport.NodeID) error {
	// One shared payload for every copy: the fabric encodes it into each
	// wire frame synchronously, so sharing is safe and saves N-1 copies.
	payload := protocol.EncodeEventPayload(p.id, seq, body, nil)

	type outcome struct {
		node transport.NodeID
		err  error
	}
	results := make(chan outcome, len(targets))
	for _, node := range targets {
		frame := getFrame()
		frame.Type = protocol.MTEvent
		frame.Encoding = p.engine.f.Encoding().ID()
		frame.Priority = p.q.Priority
		frame.Channel = p.topic
		frame.Seq = p.engine.f.NextSeq()
		frame.Payload = payload
		node := node
		p.sendEvent(node, frame, p.q.Reliability, func(err error) {
			results <- outcome{node: node, err: err}
		})
		putFrame(frame)
	}

	failed := 0
	account := func(res outcome) {
		if res.err != nil {
			failed++
			p.dropSubscriber(res.node)
		}
	}
	// The ack wait blocks on plain channels; under a Virtual clock the
	// delivery and retransmission events that resolve it only fire while
	// this goroutine is accounted as parked, so the wait runs in Blocking.
	var cancelErr error
	clock.Blocking(p.engine.clk, func() {
		for done := 0; done < len(targets) && cancelErr == nil; {
			select {
			case res := <-results:
				done++
				account(res)
			case <-ctx.Done():
				cancelErr = ctx.Err()
				// Drain outcomes that completed before cancellation so
				// Stats() and the subscriber set reflect them; in-flight
				// sends resolve into the buffered channel and are garbage
				// collected with it.
				for drained := true; drained && done < len(targets); {
					select {
					case res := <-results:
						done++
						account(res)
					default:
						drained = false
					}
				}
			}
		}
	})
	if failed > 0 {
		p.failures.Add(uint64(failed))
	}
	if cancelErr != nil {
		return fmt.Errorf("events: publish %q (%d subscribers unreachable before cancellation): %w",
			p.topic, failed, cancelErr)
	}
	if failed > 0 {
		return uerr.Wrapf(p.engine.reg, codeEventPartial, ErrPartialDelivery,
			"%q: %d of %d subscribers unreachable", p.topic, failed, len(targets))
	}
	return nil
}

// repairFor retransmits NACKed occurrences to one subscriber as unicast
// reliable sends from the replay buffer.
func (p *Publisher) repairFor(node transport.NodeID, seqs []uint64) {
	p.mu.Lock()
	if p.closed || p.replay == nil {
		p.mu.Unlock()
		return
	}
	type repair struct {
		seq  uint64
		body []byte
	}
	repairs := make([]repair, 0, len(seqs))
	for _, seq := range seqs {
		if body, ok := p.replay.get(seq); ok {
			// Copy: the ring slot will be overwritten by later
			// publishes while the retransmission is in flight.
			repairs = append(repairs, repair{seq: seq, body: append([]byte(nil), body...)})
		}
	}
	p.repairs.Add(uint64(len(repairs)))
	p.mu.Unlock()

	for _, rep := range repairs {
		frame := &protocol.Frame{
			Type:     protocol.MTEvent,
			Encoding: p.engine.f.Encoding().ID(),
			Priority: p.q.Priority,
			Channel:  p.topic,
			Seq:      p.engine.f.NextSeq(),
			Payload:  protocol.EncodeEventPayload(p.id, rep.seq, rep.body, nil),
		}
		p.sendEvent(node, frame, qos.ReliableARQ, nil)
	}
}

// sendEvent transmits one event frame with the topic's per-send ARQ
// tuning (qos.EventQoS.AckTimeout / MaxRetries) when the fabric supports
// it — a topic routed onto a high-latency bearer needs a longer
// retransmission fuse than the engine default, or queueing jitter spawns
// duplicates. Fabrics without per-send tuning get the plain reliable path.
func (p *Publisher) sendEvent(node transport.NodeID, frame *protocol.Frame, rel qos.Reliability, done func(error)) {
	if ts, ok := p.engine.f.(fabric.TunedSender); ok && (p.q.AckTimeout > 0 || p.q.MaxRetries > 0) {
		ts.SendReliableTuned(node, frame, rel, fabric.ReliableOpts{
			AckTimeout: p.q.AckTimeout, MaxRetries: p.q.MaxRetries,
		}, done)
		return
	}
	p.engine.f.SendReliable(node, frame, rel, done)
}

func (p *Publisher) dropSubscriber(node transport.NodeID) {
	p.mu.Lock()
	defer p.mu.Unlock()
	delete(p.subscribers, node)
}

// Stats reports published event and failed-subscriber counts.
func (p *Publisher) Stats() (published, failures uint64) {
	return p.published.Value(), p.failures.Value()
}

// Repairs reports how many occurrences were retransmitted on NACK
// (multicast mode).
func (p *Publisher) Repairs() uint64 { return p.repairs.Value() }

// Close withdraws the publisher.
func (p *Publisher) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	p.mu.Unlock()
	sh := p.engine.shardOf(p.topic)
	sh.mu.Lock()
	delete(sh.pubs, p.topic)
	sh.mu.Unlock()
	p.engine.f.OfferChanged()
}

// Record returns the naming record for announcements.
func (p *Publisher) Record() naming.Record {
	sig := ""
	if p.typ != nil {
		sig = p.typ.String()
	}
	return naming.Record{
		Kind:    naming.KindEvent,
		Name:    p.topic,
		Service: p.service,
		Node:    p.engine.f.Self(),
		TypeSig: sig,
	}
}

// Handler consumes one event occurrence.
type Handler func(v any, from transport.NodeID)

// Subscription is the consumer-side handle of one topic.
type Subscription struct {
	engine  *Engine
	topic   string
	typ     *presentation.Type
	q       qos.EventQoS
	handler Handler

	mu       sync.Mutex
	provider transport.NodeID
	closed   bool
	joined   bool // multicast group membership
	received uint64
	gaps     uint64 // occurrences detected missing in the topic stream
	repaired uint64 // gap occurrences later recovered
}

// Subscribe registers handler for topic. The subscription is announced
// reliably to the current publisher and re-announced on refresh, so it
// survives publisher restarts. Every subscription also joins the topic's
// multicast group: the delivery mode is the publisher's choice, so a
// subscriber that asked for unicast must still hear group-addressed
// occurrences from a multicast publisher.
func (e *Engine) Subscribe(topic string, t *presentation.Type, q qos.EventQoS, h Handler) (*Subscription, error) {
	if t != nil {
		if err := t.Validate(); err != nil {
			return nil, err
		}
	}
	if err := q.Validate(); err != nil {
		return nil, err
	}
	q = q.Normalize()
	if h == nil {
		return nil, fmt.Errorf("events: nil handler for %q: %w", topic, ErrTypeMismatch)
	}
	s := &Subscription{engine: e, topic: topic, typ: t, q: q, handler: h}

	sh := e.shardOf(topic)
	sh.mu.Lock()
	sh.subs[topic] = append(sh.subs[topic], s)
	sh.mu.Unlock()

	if err := e.f.Join(fabric.EventGroup(topic)); err != nil {
		s.Close()
		return nil, fmt.Errorf("events: join group for %q: %w", topic, err)
	}
	s.mu.Lock()
	s.joined = true
	s.mu.Unlock()

	// Register with the remote publisher if one exists; a local-only
	// topic needs no frames. Missing publishers are not an error — the
	// refresh loop will register when one appears (startup ordering).
	s.register()
	return s, nil
}

// register sends MTSubscribe to the current provider, if any and not local.
func (s *Subscription) register() {
	e := s.engine
	sh := e.shardOf(s.topic)
	sh.mu.Lock()
	_, local := sh.pubs[s.topic]
	sh.mu.Unlock()
	if local {
		return
	}
	rec, err := e.f.Directory().Select(naming.KindEvent, s.topic, qos.BindDynamic, "")
	if err != nil {
		return
	}
	if s.typ != nil && rec.TypeSig != "" && rec.TypeSig != s.typ.String() {
		return // incompatible publisher; skip registration
	}
	s.mu.Lock()
	s.provider = rec.Node
	s.mu.Unlock()
	// Subscriptions ride the high egress lane ahead of sample/bulk
	// backlog, so joining a topic stays fast on a congested link.
	frame := &protocol.Frame{
		Type:     protocol.MTSubscribe,
		Priority: qos.PriorityHigh,
		Channel:  s.topic,
		Seq:      e.f.NextSeq(),
	}
	e.f.SendReliable(rec.Node, frame, qos.ReliableARQ, nil)
}

// Refresh re-registers every remote subscription; the container calls it on
// its announce tick so publisher restarts relearn subscribers.
func (e *Engine) Refresh() {
	var all []*Subscription
	for i := range e.shards {
		sh := &e.shards[i]
		sh.mu.Lock()
		for _, list := range sh.subs {
			all = append(all, list...)
		}
		sh.mu.Unlock()
	}
	for _, s := range all {
		s.mu.Lock()
		closed := s.closed
		s.mu.Unlock()
		if !closed {
			s.register()
		}
	}
}

// Received reports delivered occurrence count.
func (s *Subscription) Received() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.received
}

// Gaps reports sequence gaps detected in the topic stream and how many of
// the missing occurrences were subsequently recovered (NACK repair or late
// arrival).
func (s *Subscription) Gaps() (detected, repaired uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.gaps, s.repaired
}

func (s *Subscription) noteGaps(n uint64) {
	s.mu.Lock()
	s.gaps += n
	s.mu.Unlock()
}

func (s *Subscription) noteRepaired() {
	s.mu.Lock()
	s.repaired++
	s.mu.Unlock()
}

// Close detaches the subscription and unsubscribes from the publisher.
func (s *Subscription) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	provider := s.provider
	joined := s.joined
	s.mu.Unlock()

	e := s.engine
	sh := e.shardOf(s.topic)
	sh.mu.Lock()
	list := sh.subs[s.topic]
	for i, sub := range list {
		if sub == s {
			list = append(list[:i], list[i+1:]...)
			break
		}
	}
	if len(list) == 0 {
		delete(sh.subs, s.topic)
		delete(sh.trackers, s.topic)
	} else {
		sh.subs[s.topic] = list
	}
	remaining := len(list)
	sh.mu.Unlock()

	if remaining == 0 && joined {
		uerr.Note(e.reg, codeEventLeave, e.f.Leave(fabric.EventGroup(s.topic)),
			"leave "+s.topic)
	}
	if remaining == 0 && provider != "" && provider != e.f.Self() {
		frame := &protocol.Frame{
			Type:     protocol.MTUnsubscribe,
			Priority: qos.PriorityHigh,
			Channel:  s.topic,
			Seq:      e.f.NextSeq(),
		}
		e.f.SendReliable(provider, frame, qos.ReliableARQ, nil)
	}
}

// deliverLocal dispatches an occurrence to same-container subscribers.
func (e *Engine) deliverLocal(topic string, v any, _ time.Time) {
	sh := e.shardOf(topic)
	sh.mu.Lock()
	subs := append([]*Subscription(nil), sh.subs[topic]...)
	self := e.f.Self()
	sh.mu.Unlock()
	for _, s := range subs {
		s.dispatch(presentation.DeepCopy(v), self)
	}
}

func (s *Subscription) dispatch(v any, from transport.NodeID) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.received++
	h := s.handler
	pr := s.q.Priority
	s.mu.Unlock()
	uerr.Note(s.engine.reg, codeEventShed,
		s.engine.f.Schedule(pr, func() { h(v, from) }), "dispatch "+s.topic)
}

// HandleSubscribe processes a remote MTSubscribe.
func (e *Engine) HandleSubscribe(from transport.NodeID, fr *protocol.Frame) {
	sh := e.shardOf(fr.Channel)
	sh.mu.Lock()
	pub := sh.pubs[fr.Channel]
	sh.mu.Unlock()
	if pub == nil {
		return
	}
	pub.mu.Lock()
	defer pub.mu.Unlock()
	if !pub.closed {
		pub.subscribers[from] = e.clk.Now()
	}
}

// HandleUnsubscribe processes a remote MTUnsubscribe.
func (e *Engine) HandleUnsubscribe(from transport.NodeID, fr *protocol.Frame) {
	sh := e.shardOf(fr.Channel)
	sh.mu.Lock()
	pub := sh.pubs[fr.Channel]
	sh.mu.Unlock()
	if pub == nil {
		return
	}
	pub.dropSubscriber(from)
}

// HandleEventNack processes a subscriber's gap report: retransmit the
// missing occurrences unicast from the replay buffer.
func (e *Engine) HandleEventNack(from transport.NodeID, fr *protocol.Frame) {
	sh := e.shardOf(fr.Channel)
	sh.mu.Lock()
	pub := sh.pubs[fr.Channel]
	sh.mu.Unlock()
	if pub == nil {
		return
	}
	seqs, err := protocol.DecodeEventNack(fr.Payload)
	if err != nil {
		return
	}
	pub.repairFor(from, seqs)
}

// seqTracker follows one publisher's per-topic sequence at a subscriber
// node: gap detection, duplicate suppression, repair matching. One tracker
// exists per (topic, source node); the publisher incarnation id resets it
// when the topic's publisher restarts with fresh numbering.
type seqTracker struct {
	seen    bool
	pub     uint32 // publisher incarnation
	first   uint64 // initial sequence observed for this incarnation
	last    uint64
	missing map[uint64]struct{}
}

// frameDisposition classifies an incoming sequenced occurrence.
type frameDisposition int

const (
	frameFresh frameDisposition = iota
	frameRepair
	frameDuplicate
)

// observe advances the tracker with occurrence (pubID, seq) and returns the
// disposition, the total gap since the previously highest sequence, and the
// subset of gap sequences worth NACKing (capped at protocol.MaxNackSeqs —
// anything older is beyond the publisher's replay buffer anyway).
func (tr *seqTracker) observe(pubID uint32, seq uint64) (d frameDisposition, gap uint64, nackable []uint64) {
	if !tr.seen || tr.pub != pubID {
		// Mid-stream join or publisher restart: prior history is not a
		// gap in this numbering.
		tr.seen = true
		tr.pub = pubID
		tr.first = seq
		tr.last = seq
		tr.missing = nil
		return frameFresh, 0, nil
	}
	switch {
	case seq > tr.last:
		if gap = seq - tr.last - 1; gap > 0 {
			if tr.missing == nil {
				tr.missing = make(map[uint64]struct{})
			}
			first := tr.last + 1
			// NACK only what the publisher's replay ring can still
			// serve; older losses are unrecoverable and reported via
			// the gap count alone.
			if gap > replayDepth {
				first = seq - replayDepth
			}
			for m := first; m < seq; m++ {
				tr.missing[m] = struct{}{}
				nackable = append(nackable, m)
			}
		}
		tr.last = seq
		tr.prune()
		return frameFresh, gap, nackable
	default:
		if _, ok := tr.missing[seq]; ok {
			delete(tr.missing, seq)
			return frameRepair, 0, nil
		}
		if seq < tr.first {
			// Reordered in-flight occurrence from before this tracker
			// first saw the stream (concurrent publishes racing the
			// subscribe): deliver rather than risk dropping a
			// guaranteed event. Network-level duplicates of acked
			// unicast frames are already suppressed by the container
			// dedup, so this cannot double-deliver on the ARQ path.
			return frameFresh, 0, nil
		}
		return frameDuplicate, 0, nil
	}
}

// prune drops missing entries too old for any replay buffer to repair.
func (tr *seqTracker) prune() {
	if len(tr.missing) <= 4*protocol.MaxNackSeqs {
		return
	}
	for seq := range tr.missing {
		if tr.last-seq > 2*replayDepth {
			delete(tr.missing, seq)
		}
	}
}

// HandleEvent processes an incoming MTEvent occurrence (group-addressed,
// unicast, or NACK-triggered retransmission).
func (e *Engine) HandleEvent(from transport.NodeID, fr *protocol.Frame) {
	pubID, topicSeq, body, err := protocol.DecodeEventPayload(fr.Payload)
	if err != nil {
		// Unsequenced frame (foreign or ancient sender): deliver as-is
		// with no gap tracking.
		pubID, topicSeq, body = 0, 0, fr.Payload
	}

	sh := e.shardOf(fr.Channel)
	sh.mu.Lock()
	subs := append([]*Subscription(nil), sh.subs[fr.Channel]...)
	var (
		disposition = frameFresh
		gap         uint64
		nackable    []uint64
		wantRepair  bool
	)
	if len(subs) > 0 && topicSeq != 0 && from != e.f.Self() {
		byNode := sh.trackers[fr.Channel]
		if byNode == nil {
			byNode = make(map[transport.NodeID]*seqTracker)
			sh.trackers[fr.Channel] = byNode
		}
		tr := byNode[from]
		if tr == nil {
			tr = &seqTracker{}
			byNode[from] = tr
		}
		disposition, gap, nackable = tr.observe(pubID, topicSeq)
		// NACK gaps whenever an ARQ-reliable subscription exists; a
		// unicast publisher without a replay buffer ignores the NACK
		// (its own ARQ retries close the gap), so this is safe in
		// either delivery mode.
		for _, s := range subs {
			if s.q.Reliability == qos.ReliableARQ {
				wantRepair = true
				break
			}
		}
	}
	sh.mu.Unlock()
	if len(subs) == 0 || disposition == frameDuplicate {
		return
	}

	if gap > 0 {
		for _, s := range subs {
			s.noteGaps(gap)
		}
		if wantRepair && len(nackable) > 0 {
			e.sendNack(from, fr.Channel, nackable)
		}
	}
	if disposition == frameRepair {
		for _, s := range subs {
			s.noteRepaired()
		}
	}

	enc := e.f.Encoding()
	if len(body) > 0 && fr.Encoding != enc.ID() {
		return
	}
	for _, s := range subs {
		var v any
		if s.typ != nil && len(body) > 0 {
			decoded, err := enc.Unmarshal(s.typ, body)
			if err != nil {
				continue
			}
			v = decoded
		}
		s.dispatch(v, from)
	}
}

// sendNack reports newly detected gaps to the publisher, reliably so the
// report itself survives the loss that caused the gap.
func (e *Engine) sendNack(to transport.NodeID, topic string, missing []uint64) {
	payload, err := protocol.EncodeEventNack(missing)
	if err != nil {
		return
	}
	frame := &protocol.Frame{
		Type:     protocol.MTEventNack,
		Priority: qos.PriorityHigh,
		Channel:  topic,
		Seq:      e.f.NextSeq(),
		Payload:  payload,
	}
	e.f.SendReliable(to, frame, qos.ReliableARQ, nil)
}

// PeerGone drops a failed node from every publisher's subscriber set and
// clears its sequence trackers.
func (e *Engine) PeerGone(node transport.NodeID) {
	var pubs []*Publisher
	for i := range e.shards {
		sh := &e.shards[i]
		sh.mu.Lock()
		for _, p := range sh.pubs {
			pubs = append(pubs, p)
		}
		for _, byNode := range sh.trackers {
			delete(byNode, node)
		}
		sh.mu.Unlock()
	}
	for _, p := range pubs {
		p.dropSubscriber(node)
	}
}

// Records lists this node's offered topics for announcements.
func (e *Engine) Records() []naming.Record {
	var out []naming.Record
	for i := range e.shards {
		sh := &e.shards[i]
		sh.mu.Lock()
		for _, p := range sh.pubs {
			out = append(out, p.Record())
		}
		sh.mu.Unlock()
	}
	return out
}
