package events

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"uavmw/internal/encoding"
	"uavmw/internal/fabric"
	"uavmw/internal/protocol"
	"uavmw/internal/qos"
	"uavmw/internal/transport"
)

var mcastQoS = qos.EventQoS{Delivery: qos.DeliverMulticast}

func TestMulticastQoSValidation(t *testing.T) {
	e := New(newFakeFabric("n"))
	if _, err := e.Offer("t", "svc", alertType,
		qos.EventQoS{Delivery: qos.DeliverMulticast, Reliability: qos.ReliableStream}); err == nil {
		t.Error("multicast over stream accepted")
	}
	if _, err := e.Offer("t", "svc", alertType, mcastQoS); err != nil {
		t.Fatal(err)
	}
}

func TestMulticastPublishSendsOneGroupFrame(t *testing.T) {
	f := newFakeFabric("pub")
	e := New(f)
	p, err := e.Offer("t", "svc", alertType, mcastQoS)
	if err != nil {
		t.Fatal(err)
	}
	e.HandleSubscribe("a", &protocol.Frame{Type: protocol.MTSubscribe, Channel: "t"})
	e.HandleSubscribe("b", &protocol.Frame{Type: protocol.MTSubscribe, Channel: "t"})
	e.HandleSubscribe("c", &protocol.Frame{Type: protocol.MTSubscribe, Channel: "t"})

	for i := 0; i < 3; i++ {
		if err := p.Publish(context.Background(), map[string]any{"code": uint32(i)}); err != nil {
			t.Fatalf("publish %d: %v", i, err)
		}
	}

	f.mu.Lock()
	groupFrames, groups := f.group, f.groupName
	f.mu.Unlock()
	// One frame per occurrence regardless of the 3 subscribers.
	if len(groupFrames) != 3 {
		t.Fatalf("group frames = %d, want 3", len(groupFrames))
	}
	if n := f.reliableCount(protocol.MTEvent); n != 0 {
		t.Errorf("multicast publish also sent %d unicast event frames", n)
	}
	for i, fr := range groupFrames {
		if groups[i] != fabric.EventGroup("t") {
			t.Errorf("frame %d group = %q", i, groups[i])
		}
		pubID, seq, _, err := protocol.DecodeEventPayload(fr.Payload)
		if err != nil {
			t.Fatal(err)
		}
		if pubID == 0 || seq != uint64(i+1) {
			t.Errorf("frame %d: pubID=%d seq=%d", i, pubID, seq)
		}
	}
}

func TestMulticastSubscribeJoinsGroup(t *testing.T) {
	f := newFakeFabric("sub")
	e := New(f)
	s, err := e.Subscribe("t", alertType, mcastQoS, func(any, transport.NodeID) {})
	if err != nil {
		t.Fatal(err)
	}
	f.mu.Lock()
	joined := f.joined[fabric.EventGroup("t")]
	f.mu.Unlock()
	if joined != 1 {
		t.Fatalf("join count = %d", joined)
	}
	s.Close()
	f.mu.Lock()
	joined = f.joined[fabric.EventGroup("t")]
	f.mu.Unlock()
	if joined != 0 {
		t.Errorf("after close join count = %d", joined)
	}
}

// occurrence builds the wire payload of one sequenced occurrence.
func occurrence(t *testing.T, pubID uint32, seq uint64, code uint32) []byte {
	t.Helper()
	body, err := encoding.Marshal(alertType, map[string]any{"code": code})
	if err != nil {
		t.Fatal(err)
	}
	return protocol.EncodeEventPayload(pubID, seq, body, nil)
}

func TestGapDetectionNackAndRepair(t *testing.T) {
	f := newFakeFabric("sub")
	e := New(f)
	var received atomic.Int64
	s, err := e.Subscribe("t", alertType, mcastQoS,
		func(any, transport.NodeID) { received.Add(1) })
	if err != nil {
		t.Fatal(err)
	}

	ev := func(seq uint64) *protocol.Frame {
		return &protocol.Frame{
			Type: protocol.MTEvent, Encoding: 1, Channel: "t", Seq: seq,
			Payload: occurrence(t, 11, seq, uint32(seq)),
		}
	}
	e.HandleEvent("pub", ev(1))
	e.HandleEvent("pub", ev(4)) // 2 and 3 lost

	if detected, repaired := s.Gaps(); detected != 2 || repaired != 0 {
		t.Fatalf("gaps = %d/%d, want 2/0", detected, repaired)
	}
	// A NACK listing both missing sequences went back to the source.
	if n := f.reliableCount(protocol.MTEventNack); n != 1 {
		t.Fatalf("nack frames = %d", n)
	}
	f.mu.Lock()
	var nack *protocol.Frame
	for _, fr := range f.reliable {
		if fr.Type == protocol.MTEventNack {
			nack = fr
		}
	}
	f.mu.Unlock()
	missing, err := protocol.DecodeEventNack(nack.Payload)
	if err != nil {
		t.Fatal(err)
	}
	if len(missing) != 2 || missing[0] != 2 || missing[1] != 3 {
		t.Fatalf("nacked = %v", missing)
	}

	// Repairs arrive (unicast retransmission): delivered exactly once.
	e.HandleEvent("pub", ev(2))
	e.HandleEvent("pub", ev(3))
	if detected, repaired := s.Gaps(); detected != 2 || repaired != 2 {
		t.Fatalf("after repair gaps = %d/%d", detected, repaired)
	}
	// Late duplicate of a repaired occurrence: suppressed.
	e.HandleEvent("pub", ev(2))
	if got := received.Load(); got != 4 {
		t.Fatalf("received = %d, want 4", got)
	}
	if s.Received() != 4 {
		t.Errorf("Received() = %d", s.Received())
	}
}

func TestReorderedStartupOccurrencesAreNotDropped(t *testing.T) {
	// Concurrent publishes can race the subscribe so the tracker's first
	// observation is not the stream's first occurrence; the earlier one
	// arriving late must still be delivered (guaranteed primitive), not
	// suppressed as a duplicate.
	f := newFakeFabric("sub")
	e := New(f)
	var received atomic.Int64
	if _, err := e.Subscribe("t", alertType, qos.EventQoS{},
		func(any, transport.NodeID) { received.Add(1) }); err != nil {
		t.Fatal(err)
	}
	ev := func(seq uint64) *protocol.Frame {
		return &protocol.Frame{
			Type: protocol.MTEvent, Encoding: 1, Channel: "t", Seq: seq,
			Payload: occurrence(t, 11, seq, uint32(seq)),
		}
	}
	e.HandleEvent("pub", ev(2)) // first observation mid-stream
	e.HandleEvent("pub", ev(1)) // reordered predecessor
	if got := received.Load(); got != 2 {
		t.Fatalf("received = %d, want 2", got)
	}
}

func TestUnicastSubscriberHearsMulticastPublisher(t *testing.T) {
	// Delivery mode is the publisher's choice: a subscriber that asked
	// for unicast QoS still joins the topic group so group-addressed
	// occurrences reach it.
	f := newFakeFabric("sub")
	e := New(f)
	s, err := e.Subscribe("t", alertType, qos.EventQoS{}, func(any, transport.NodeID) {})
	if err != nil {
		t.Fatal(err)
	}
	f.mu.Lock()
	joined := f.joined[fabric.EventGroup("t")]
	f.mu.Unlock()
	if joined != 1 {
		t.Fatalf("unicast subscription join count = %d, want 1", joined)
	}
	// Gaps in a multicast stream are still NACKed (the subscription is
	// ARQ-reliable), so repair works across the mode mismatch.
	e.HandleEvent("pub", &protocol.Frame{
		Type: protocol.MTEvent, Encoding: 1, Channel: "t", Seq: 1,
		Payload: occurrence(t, 11, 1, 1),
	})
	e.HandleEvent("pub", &protocol.Frame{
		Type: protocol.MTEvent, Encoding: 1, Channel: "t", Seq: 3,
		Payload: occurrence(t, 11, 3, 3),
	})
	if n := f.reliableCount(protocol.MTEventNack); n != 1 {
		t.Errorf("nack frames = %d, want 1", n)
	}
	s.Close()
}

func TestHugeGapNackBoundedByReplayDepth(t *testing.T) {
	f := newFakeFabric("sub")
	e := New(f)
	s, err := e.Subscribe("t", alertType, mcastQoS, func(any, transport.NodeID) {})
	if err != nil {
		t.Fatal(err)
	}
	ev := func(seq uint64) *protocol.Frame {
		return &protocol.Frame{
			Type: protocol.MTEvent, Encoding: 1, Channel: "t", Seq: seq,
			Payload: occurrence(t, 11, seq, uint32(seq)),
		}
	}
	e.HandleEvent("pub", ev(1))
	e.HandleEvent("pub", ev(300)) // 298 lost, far beyond the replay ring

	if detected, _ := s.Gaps(); detected != 298 {
		t.Fatalf("gaps detected = %d, want 298", detected)
	}
	f.mu.Lock()
	var nack *protocol.Frame
	for _, fr := range f.reliable {
		if fr.Type == protocol.MTEventNack {
			nack = fr
		}
	}
	f.mu.Unlock()
	if nack == nil {
		t.Fatal("no nack sent")
	}
	missing, err := protocol.DecodeEventNack(nack.Payload)
	if err != nil {
		t.Fatal(err)
	}
	// Only what the publisher's replay ring can serve is requested: the
	// newest replayDepth sequences before the arriving one.
	if len(missing) != replayDepth {
		t.Fatalf("nacked %d seqs, want %d", len(missing), replayDepth)
	}
	if missing[0] != 300-replayDepth || missing[len(missing)-1] != 299 {
		t.Errorf("nack range [%d, %d]", missing[0], missing[len(missing)-1])
	}
}

func TestPublisherRestartResetsTracker(t *testing.T) {
	f := newFakeFabric("sub")
	e := New(f)
	var received atomic.Int64
	if _, err := e.Subscribe("t", alertType, mcastQoS,
		func(any, transport.NodeID) { received.Add(1) }); err != nil {
		t.Fatal(err)
	}
	e.HandleEvent("pub", &protocol.Frame{
		Type: protocol.MTEvent, Encoding: 1, Channel: "t", Seq: 1,
		Payload: occurrence(t, 5, 40, 0),
	})
	// Restarted publisher: new incarnation, numbering back at 1. Must be
	// delivered as fresh, not dropped as an ancient duplicate.
	e.HandleEvent("pub", &protocol.Frame{
		Type: protocol.MTEvent, Encoding: 1, Channel: "t", Seq: 2,
		Payload: occurrence(t, 6, 1, 0),
	})
	if got := received.Load(); got != 2 {
		t.Fatalf("received = %d, want 2", got)
	}
	if n := f.reliableCount(protocol.MTEventNack); n != 0 {
		t.Errorf("restart produced %d nacks", n)
	}
}

func TestHandleEventNackRepairsFromReplay(t *testing.T) {
	f := newFakeFabric("pub")
	e := New(f)
	p, err := e.Offer("t", "svc", alertType, mcastQoS)
	if err != nil {
		t.Fatal(err)
	}
	e.HandleSubscribe("sub1", &protocol.Frame{Type: protocol.MTSubscribe, Channel: "t"})
	for i := 1; i <= 3; i++ {
		if err := p.Publish(context.Background(), map[string]any{"code": uint32(i)}); err != nil {
			t.Fatal(err)
		}
	}

	nackPayload, err := protocol.EncodeEventNack([]uint64{2})
	if err != nil {
		t.Fatal(err)
	}
	e.HandleEventNack("sub1", &protocol.Frame{
		Type: protocol.MTEventNack, Channel: "t", Seq: 9, Payload: nackPayload,
	})

	if n := f.reliableCount(protocol.MTEvent); n != 1 {
		t.Fatalf("repair frames = %d", n)
	}
	f.mu.Lock()
	var repair *protocol.Frame
	var repairTo transport.NodeID
	for i, fr := range f.reliable {
		if fr.Type == protocol.MTEvent {
			repair, repairTo = fr, f.reliantTo[i]
		}
	}
	f.mu.Unlock()
	if repairTo != "sub1" {
		t.Errorf("repair sent to %q", repairTo)
	}
	_, seq, body, err := protocol.DecodeEventPayload(repair.Payload)
	if err != nil {
		t.Fatal(err)
	}
	if seq != 2 {
		t.Errorf("repair seq = %d", seq)
	}
	v, err := encoding.Binary{}.Unmarshal(alertType, body)
	if err != nil {
		t.Fatal(err)
	}
	if v.(map[string]any)["code"] != uint32(2) {
		t.Errorf("repair body = %v", v)
	}
	if p.Repairs() != 1 {
		t.Errorf("Repairs() = %d", p.Repairs())
	}

	// A NACK for a sequence beyond the replay buffer is silently skipped.
	old, err := protocol.EncodeEventNack([]uint64{999})
	if err != nil {
		t.Fatal(err)
	}
	e.HandleEventNack("sub1", &protocol.Frame{
		Type: protocol.MTEventNack, Channel: "t", Seq: 10, Payload: old,
	})
	if n := f.reliableCount(protocol.MTEvent); n != 1 {
		t.Errorf("unrepairable nack produced frames: %d", n)
	}
}

func TestUnicastCarriesTopicSeqOnWire(t *testing.T) {
	f := newFakeFabric("pub")
	e := New(f)
	p, err := e.Offer("t", "svc", alertType, qos.EventQoS{})
	if err != nil {
		t.Fatal(err)
	}
	e.HandleSubscribe("gs", &protocol.Frame{Type: protocol.MTSubscribe, Channel: "t"})
	for i := 1; i <= 2; i++ {
		if err := p.Publish(context.Background(), map[string]any{"code": uint32(i)}); err != nil {
			t.Fatal(err)
		}
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	want := uint64(1)
	for _, fr := range f.reliable {
		if fr.Type != protocol.MTEvent {
			continue
		}
		pubID, seq, _, err := protocol.DecodeEventPayload(fr.Payload)
		if err != nil {
			t.Fatal(err)
		}
		if pubID == 0 || seq != want {
			t.Errorf("unicast frame pubID=%d seq=%d, want seq %d", pubID, seq, want)
		}
		want++
	}
	if want != 3 {
		t.Errorf("saw %d event frames", want-1)
	}
}

// stallFabric never completes reliable sends to the "slow" node; sends to
// the "bad" node fail immediately.
type stallFabric struct {
	*fakeFabric
}

func (f *stallFabric) SendReliable(to transport.NodeID, fr *protocol.Frame, rel qos.Reliability, done func(error)) {
	if to == "slow" {
		return // outcome never arrives
	}
	f.fakeFabric.SendReliable(to, fr, rel, done)
}

func TestPublishCancellationAccountsDrainedOutcomes(t *testing.T) {
	f := &stallFabric{fakeFabric: newFakeFabric("pub")}
	e := New(f)
	p, err := e.Offer("t", "svc", nil, qos.EventQoS{})
	if err != nil {
		t.Fatal(err)
	}
	e.HandleSubscribe("bad", &protocol.Frame{Type: protocol.MTSubscribe, Channel: "t"})
	e.HandleSubscribe("slow", &protocol.Frame{Type: protocol.MTSubscribe, Channel: "t"})
	f.mu.Lock()
	f.failNodes["bad"] = true
	f.mu.Unlock()

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	err = p.Publish(ctx, nil)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want deadline error, got %v", err)
	}
	// The failure that completed before cancellation is accounted and the
	// unreachable subscriber dropped; the stalled one stays registered.
	if _, failures := p.Stats(); failures != 1 {
		t.Errorf("failures = %d, want 1", failures)
	}
	subs := p.Subscribers()
	if len(subs) != 1 || subs[0] != "slow" {
		t.Errorf("subscribers after cancel = %v", subs)
	}
}
