package events

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"uavmw/internal/encoding"
	"uavmw/internal/naming"
	"uavmw/internal/presentation"
	"uavmw/internal/protocol"
	"uavmw/internal/qos"
	"uavmw/internal/transport"
)

// fakeFabric runs handlers inline; reliable sends succeed (or fail, when
// failNodes matches) immediately.
type fakeFabric struct {
	self transport.NodeID
	dir  *naming.Directory
	seq  atomic.Uint64

	// offerChanges counts OfferChanged notifications (the container would
	// broadcast a discovery delta for each).
	offerChanges atomic.Uint64

	mu        sync.Mutex
	reliable  []*protocol.Frame
	reliantTo []transport.NodeID // destination of each reliable frame
	group     []*protocol.Frame  // group-addressed frames
	groupName []string           // group of each group frame
	joined    map[string]int     // Join minus Leave per group
	failNodes map[transport.NodeID]bool
}

func newFakeFabric(self transport.NodeID) *fakeFabric {
	return &fakeFabric{
		self:      self,
		dir:       naming.NewDirectory(time.Minute),
		joined:    make(map[string]int),
		failNodes: make(map[transport.NodeID]bool),
	}
}

func (f *fakeFabric) Self() transport.NodeID       { return f.self }
func (f *fakeFabric) Encoding() encoding.Encoding  { return encoding.Binary{} }
func (f *fakeFabric) Directory() *naming.Directory { return f.dir }
func (f *fakeFabric) NextSeq() uint64              { return f.seq.Add(1) }
func (f *fakeFabric) OfferChanged()                { f.offerChanges.Add(1) }
func (f *fakeFabric) Schedule(_ qos.Priority, job func()) error {
	job()
	return nil
}
func (f *fakeFabric) SendBestEffort(transport.NodeID, *protocol.Frame) error { return nil }

func (f *fakeFabric) SendGroup(group string, fr *protocol.Frame) error {
	cp := *fr
	cp.Payload = append([]byte(nil), fr.Payload...)
	f.mu.Lock()
	defer f.mu.Unlock()
	f.group = append(f.group, &cp)
	f.groupName = append(f.groupName, group)
	return nil
}

func (f *fakeFabric) Join(group string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.joined[group]++
	return nil
}

func (f *fakeFabric) Leave(group string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.joined[group]--
	return nil
}

func (f *fakeFabric) SendReliable(to transport.NodeID, fr *protocol.Frame, _ qos.Reliability, done func(error)) {
	// Fabric contract: the frame may be pooled by the caller after the
	// call returns, so retain a copy, not the original.
	cp := *fr
	cp.Payload = append([]byte(nil), fr.Payload...)
	f.mu.Lock()
	f.reliable = append(f.reliable, &cp)
	f.reliantTo = append(f.reliantTo, to)
	fail := f.failNodes[to]
	f.mu.Unlock()
	if done != nil {
		if fail {
			done(errors.New("injected send failure"))
		} else {
			done(nil)
		}
	}
}

func (f *fakeFabric) reliableCount(mt protocol.MsgType) int {
	f.mu.Lock()
	defer f.mu.Unlock()
	n := 0
	for _, fr := range f.reliable {
		if fr.Type == mt {
			n++
		}
	}
	return n
}

var alertType = presentation.MustParse("{code:u32}")

func TestOfferValidation(t *testing.T) {
	e := New(newFakeFabric("n"))
	if _, err := e.Offer("t", "svc", presentation.StructOf(), qos.EventQoS{}); err == nil {
		t.Error("invalid type accepted")
	}
	if _, err := e.Offer("t", "svc", nil, qos.EventQoS{Reliability: qos.BestEffort}); err == nil {
		t.Error("best-effort events accepted")
	}
	if _, err := e.Offer("t", "svc", alertType, qos.EventQoS{}); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Offer("t", "svc", alertType, qos.EventQoS{}); !errors.Is(err, ErrDuplicateName) {
		t.Errorf("duplicate: %v", err)
	}
}

func TestLocalDeliveryBypass(t *testing.T) {
	f := newFakeFabric("n")
	e := New(f)
	p, err := e.Offer("t", "svc", alertType, qos.EventQoS{})
	if err != nil {
		t.Fatal(err)
	}
	var got atomic.Value
	if _, err := e.Subscribe("t", alertType, qos.EventQoS{},
		func(v any, from transport.NodeID) { got.Store(v) }); err != nil {
		t.Fatal(err)
	}
	if err := p.Publish(context.Background(), map[string]any{"code": 7}); err != nil {
		t.Fatal(err)
	}
	v := got.Load()
	if v == nil || v.(map[string]any)["code"] != uint32(7) {
		t.Fatalf("local delivery = %v", v)
	}
	// Purely local: no reliable frames.
	if n := f.reliableCount(protocol.MTEvent); n != 0 {
		t.Errorf("local publish sent %d event frames", n)
	}
}

func TestRemoteSubscriberManagement(t *testing.T) {
	f := newFakeFabric("pub")
	e := New(f)
	p, err := e.Offer("t", "svc", alertType, qos.EventQoS{})
	if err != nil {
		t.Fatal(err)
	}
	e.HandleSubscribe("gs", &protocol.Frame{Type: protocol.MTSubscribe, Channel: "t"})
	e.HandleSubscribe("mc", &protocol.Frame{Type: protocol.MTSubscribe, Channel: "t"})
	if got := len(p.Subscribers()); got != 2 {
		t.Fatalf("subscribers = %d", got)
	}
	if err := p.Publish(context.Background(), map[string]any{"code": 1}); err != nil {
		t.Fatal(err)
	}
	if n := f.reliableCount(protocol.MTEvent); n != 2 {
		t.Errorf("event frames = %d, want 2", n)
	}
	e.HandleUnsubscribe("gs", &protocol.Frame{Type: protocol.MTUnsubscribe, Channel: "t"})
	if got := len(p.Subscribers()); got != 1 {
		t.Errorf("after unsubscribe = %d", got)
	}
	e.PeerGone("mc")
	if got := len(p.Subscribers()); got != 0 {
		t.Errorf("after PeerGone = %d", got)
	}
	published, failures := p.Stats()
	if published != 1 || failures != 0 {
		t.Errorf("stats = %d/%d", published, failures)
	}
}

func TestPartialDeliveryDropsSubscriber(t *testing.T) {
	f := newFakeFabric("pub")
	e := New(f)
	p, err := e.Offer("t", "svc", nil, qos.EventQoS{})
	if err != nil {
		t.Fatal(err)
	}
	e.HandleSubscribe("good", &protocol.Frame{Type: protocol.MTSubscribe, Channel: "t"})
	e.HandleSubscribe("bad", &protocol.Frame{Type: protocol.MTSubscribe, Channel: "t"})
	f.mu.Lock()
	f.failNodes["bad"] = true
	f.mu.Unlock()

	err = p.Publish(context.Background(), nil)
	if !errors.Is(err, ErrPartialDelivery) {
		t.Fatalf("want ErrPartialDelivery, got %v", err)
	}
	// The unreachable subscriber is dropped; next publish succeeds fully.
	if err := p.Publish(context.Background(), nil); err != nil {
		t.Errorf("after drop: %v", err)
	}
	if got := len(p.Subscribers()); got != 1 {
		t.Errorf("subscribers = %d", got)
	}
}

func TestPublishTypeEnforcement(t *testing.T) {
	e := New(newFakeFabric("n"))
	p, err := e.Offer("payload-less", "svc", nil, qos.EventQoS{})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Publish(context.Background(), "unexpected"); !errors.Is(err, ErrTypeMismatch) {
		t.Errorf("payload on void topic: %v", err)
	}
	p2, err := e.Offer("typed", "svc", alertType, qos.EventQoS{})
	if err != nil {
		t.Fatal(err)
	}
	if err := p2.Publish(context.Background(), "garbage"); err == nil {
		t.Error("uncoercible payload accepted")
	}
}

func TestSubscribeRegistersWithRemotePublisher(t *testing.T) {
	f := newFakeFabric("sub")
	e := New(f)
	f.dir.Apply(&naming.Announcement{
		Node: "pub", Epoch: 1,
		Records: []naming.Record{{
			Kind: naming.KindEvent, Name: "t", Service: "svc", Node: "pub",
			TypeSig: alertType.String(),
		}},
	}, time.Now())

	s, err := e.Subscribe("t", alertType, qos.EventQoS{}, func(any, transport.NodeID) {})
	if err != nil {
		t.Fatal(err)
	}
	if n := f.reliableCount(protocol.MTSubscribe); n != 1 {
		t.Fatalf("subscribe frames = %d", n)
	}
	// Refresh re-registers (publisher restart recovery).
	e.Refresh()
	if n := f.reliableCount(protocol.MTSubscribe); n != 2 {
		t.Errorf("after refresh = %d", n)
	}
	s.Close()
	if n := f.reliableCount(protocol.MTUnsubscribe); n != 1 {
		t.Errorf("unsubscribe frames = %d", n)
	}
}

func TestHandleEventDecodesAndCounts(t *testing.T) {
	f := newFakeFabric("sub")
	e := New(f)
	var got atomic.Value
	s, err := e.Subscribe("t", alertType, qos.EventQoS{},
		func(v any, from transport.NodeID) { got.Store(v) })
	if err != nil {
		t.Fatal(err)
	}
	body, err := encoding.Marshal(alertType, map[string]any{"code": uint32(9)})
	if err != nil {
		t.Fatal(err)
	}
	e.HandleEvent("pub", &protocol.Frame{
		Type: protocol.MTEvent, Encoding: 1, Channel: "t", Seq: 1,
		Payload: protocol.EncodeEventPayload(7, 1, body, nil),
	})
	v := got.Load()
	if v == nil || v.(map[string]any)["code"] != uint32(9) {
		t.Fatalf("delivered = %v", v)
	}
	if s.Received() != 1 {
		t.Errorf("Received = %d", s.Received())
	}
	// Wrong encoding: ignored.
	e.HandleEvent("pub", &protocol.Frame{
		Type: protocol.MTEvent, Encoding: 99, Channel: "t", Seq: 2,
		Payload: protocol.EncodeEventPayload(7, 2, body, nil),
	})
	if s.Received() != 1 {
		t.Error("foreign-encoded event delivered")
	}
}

func TestNilHandlerRejected(t *testing.T) {
	e := New(newFakeFabric("n"))
	if _, err := e.Subscribe("t", nil, qos.EventQoS{}, nil); err == nil {
		t.Error("nil handler accepted")
	}
}

func TestRecords(t *testing.T) {
	e := New(newFakeFabric("node3"))
	if _, err := e.Offer("alarm", "svc", alertType, qos.EventQoS{}); err != nil {
		t.Fatal(err)
	}
	recs := e.Records()
	if len(recs) != 1 || recs[0].Kind != naming.KindEvent || recs[0].TypeSig != alertType.String() {
		t.Errorf("records = %+v", recs)
	}
}
