// Package imaging is the payload substrate standing in for the paper's
// TV/IR camera and on-board FPGA video processor (§5): a deterministic
// synthetic frame generator and a connected-component blob detector. The
// file-transfer and event paths only require real byte payloads of
// realistic size and a downstream consumer that can raise detections;
// synthetic frames give both, reproducibly.
package imaging

import (
	"bytes"
	"errors"
	"fmt"
	"image"
	"image/color"
	"image/png"
	"math/rand"
)

// Target is a bright feature injected into a synthetic frame (the thing
// the mission is looking for).
type Target struct {
	// X, Y is the center pixel.
	X, Y int
	// Size is the half-width of the square.
	Size int
}

// FrameSpec parameterizes generation.
type FrameSpec struct {
	// Width, Height in pixels.
	Width, Height int
	// Targets to inject; positions are derived from Seed when empty and
	// TargetCount > 0.
	Targets []Target
	// TargetCount requests derived targets when Targets is empty.
	TargetCount int
	// NoiseLevel is the background noise amplitude (0-80 gray levels).
	NoiseLevel int
	// Seed makes noise and derived targets reproducible (0 means 1).
	Seed int64
}

// ErrBadFrame tags generation/decoding failures.
var ErrBadFrame = errors.New("bad frame")

// targetIntensity is the gray level of injected targets, far above noise.
const targetIntensity = 230

// Generate renders a synthetic grayscale frame.
func Generate(spec FrameSpec) (*image.Gray, []Target, error) {
	if spec.Width <= 0 || spec.Height <= 0 {
		return nil, nil, fmt.Errorf("imaging: %dx%d: %w", spec.Width, spec.Height, ErrBadFrame)
	}
	seed := spec.Seed
	if seed == 0 {
		seed = 1
	}
	rng := rand.New(rand.NewSource(seed))
	if spec.NoiseLevel < 0 {
		spec.NoiseLevel = 0
	}
	if spec.NoiseLevel > 80 {
		spec.NoiseLevel = 80
	}

	img := image.NewGray(image.Rect(0, 0, spec.Width, spec.Height))
	for i := range img.Pix {
		img.Pix[i] = uint8(30 + rng.Intn(spec.NoiseLevel+1))
	}

	targets := spec.Targets
	if len(targets) == 0 && spec.TargetCount > 0 {
		targets = make([]Target, spec.TargetCount)
		for i := range targets {
			size := 3 + rng.Intn(5)
			targets[i] = Target{
				X:    size + 2 + rng.Intn(max(1, spec.Width-2*size-4)),
				Y:    size + 2 + rng.Intn(max(1, spec.Height-2*size-4)),
				Size: size,
			}
		}
	}
	for _, tg := range targets {
		for dy := -tg.Size; dy <= tg.Size; dy++ {
			for dx := -tg.Size; dx <= tg.Size; dx++ {
				x, y := tg.X+dx, tg.Y+dy
				if x >= 0 && x < spec.Width && y >= 0 && y < spec.Height {
					img.SetGray(x, y, color.Gray{Y: targetIntensity})
				}
			}
		}
	}
	return img, targets, nil
}

// EncodePNG serializes a frame for file transfer.
func EncodePNG(img *image.Gray) ([]byte, error) {
	var buf bytes.Buffer
	if err := png.Encode(&buf, img); err != nil {
		return nil, fmt.Errorf("imaging: encode: %w", err)
	}
	return buf.Bytes(), nil
}

// DecodePNG recovers a grayscale frame.
func DecodePNG(data []byte) (*image.Gray, error) {
	img, err := png.Decode(bytes.NewReader(data))
	if err != nil {
		return nil, fmt.Errorf("imaging: decode: %w", err)
	}
	if g, ok := img.(*image.Gray); ok {
		return g, nil
	}
	// Convert other color models.
	b := img.Bounds()
	g := image.NewGray(b)
	for y := b.Min.Y; y < b.Max.Y; y++ {
		for x := b.Min.X; x < b.Max.X; x++ {
			g.Set(x, y, img.At(x, y))
		}
	}
	return g, nil
}

// Detection is one blob the detector found.
type Detection struct {
	// X, Y is the blob centroid.
	X, Y int
	// Pixels is the connected-component size.
	Pixels int
	// Score is mean intensity of the blob in [0,1].
	Score float64
}

// DetectBlobs runs the FPGA-stand-in feature detector: threshold then
// 4-connected component labeling, dropping components under minPixels.
func DetectBlobs(img *image.Gray, threshold uint8, minPixels int) []Detection {
	if img == nil {
		return nil
	}
	b := img.Bounds()
	w, h := b.Dx(), b.Dy()
	visited := make([]bool, w*h)
	var out []Detection

	at := func(x, y int) uint8 { return img.Pix[y*img.Stride+x] }

	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			idx := y*w + x
			if visited[idx] || at(x, y) < threshold {
				continue
			}
			// BFS flood fill.
			var (
				stack  = [][2]int{{x, y}}
				pixels int
				sumX   int
				sumY   int
				sumI   int
			)
			visited[idx] = true
			for len(stack) > 0 {
				p := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				px, py := p[0], p[1]
				pixels++
				sumX += px
				sumY += py
				sumI += int(at(px, py))
				for _, d := range [4][2]int{{1, 0}, {-1, 0}, {0, 1}, {0, -1}} {
					nx, ny := px+d[0], py+d[1]
					if nx < 0 || nx >= w || ny < 0 || ny >= h {
						continue
					}
					nidx := ny*w + nx
					if !visited[nidx] && at(nx, ny) >= threshold {
						visited[nidx] = true
						stack = append(stack, [2]int{nx, ny})
					}
				}
			}
			if pixels >= minPixels {
				out = append(out, Detection{
					X:      sumX / pixels,
					Y:      sumY / pixels,
					Pixels: pixels,
					Score:  float64(sumI) / float64(pixels) / 255,
				})
			}
		}
	}
	return out
}
