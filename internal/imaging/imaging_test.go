package imaging

import (
	"testing"
)

func TestGenerateDeterministic(t *testing.T) {
	spec := FrameSpec{Width: 320, Height: 240, TargetCount: 3, NoiseLevel: 40, Seed: 5}
	a, ta, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	b, tb, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(ta) != 3 || len(tb) != 3 {
		t.Fatalf("targets %d/%d", len(ta), len(tb))
	}
	for i := range ta {
		if ta[i] != tb[i] {
			t.Error("same seed produced different targets")
		}
	}
	for i := range a.Pix {
		if a.Pix[i] != b.Pix[i] {
			t.Fatal("same seed produced different pixels")
		}
	}
}

func TestGenerateErrors(t *testing.T) {
	if _, _, err := Generate(FrameSpec{Width: 0, Height: 10}); err == nil {
		t.Error("zero width must fail")
	}
	if _, _, err := Generate(FrameSpec{Width: 10, Height: -1}); err == nil {
		t.Error("negative height must fail")
	}
}

func TestPNGRoundTrip(t *testing.T) {
	img, _, err := Generate(FrameSpec{Width: 160, Height: 120, TargetCount: 2, NoiseLevel: 30, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	data, err := EncodePNG(img)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) == 0 {
		t.Fatal("empty png")
	}
	back, err := DecodePNG(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.Bounds() != img.Bounds() {
		t.Fatalf("bounds %v vs %v", back.Bounds(), img.Bounds())
	}
	for i := range img.Pix {
		if back.Pix[i] != img.Pix[i] {
			t.Fatal("png round trip changed pixels")
		}
	}
}

func TestDecodeGarbage(t *testing.T) {
	if _, err := DecodePNG([]byte("not a png")); err == nil {
		t.Error("garbage must fail to decode")
	}
}

func TestDetectorFindsInjectedTargets(t *testing.T) {
	for _, count := range []int{0, 1, 3, 6} {
		img, targets, err := Generate(FrameSpec{
			Width: 640, Height: 480, TargetCount: count, NoiseLevel: 40, Seed: int64(count + 1),
		})
		if err != nil {
			t.Fatal(err)
		}
		dets := DetectBlobs(img, 150, 9)
		// Targets may overlap and merge, so detections <= injected; but
		// with seeded placement on a 640x480 frame, expect most found.
		if count == 0 && len(dets) != 0 {
			t.Errorf("false positives on empty frame: %d", len(dets))
		}
		if count > 0 && len(dets) == 0 {
			t.Errorf("count=%d: nothing detected", count)
		}
		if len(dets) > count {
			t.Errorf("count=%d: %d detections", count, len(dets))
		}
		// Every detection must sit near an injected target.
		for _, d := range dets {
			near := false
			for _, tg := range targets {
				dx, dy := d.X-tg.X, d.Y-tg.Y
				if dx*dx+dy*dy <= (tg.Size+2)*(tg.Size+2) {
					near = true
					break
				}
			}
			if !near {
				t.Errorf("detection at (%d,%d) matches no target", d.X, d.Y)
			}
			if d.Score < 0.5 {
				t.Errorf("detection score %v too low", d.Score)
			}
		}
	}
}

func TestDetectorThresholdRejectsNoise(t *testing.T) {
	img, _, err := Generate(FrameSpec{Width: 320, Height: 240, NoiseLevel: 60, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if dets := DetectBlobs(img, 150, 4); len(dets) != 0 {
		t.Errorf("noise produced %d detections", len(dets))
	}
	// Threshold below the noise floor floods; minPixels still gates.
	dets := DetectBlobs(img, 10, 320*240+1)
	if len(dets) != 0 {
		t.Error("minPixels gate failed")
	}
}

func TestDetectorNilImage(t *testing.T) {
	if DetectBlobs(nil, 100, 4) != nil {
		t.Error("nil image must yield nil detections")
	}
}

func TestDetectorCentroid(t *testing.T) {
	img, _, err := Generate(FrameSpec{
		Width: 100, Height: 100, NoiseLevel: 0, Seed: 2,
		Targets: []Target{{X: 50, Y: 60, Size: 4}},
	})
	if err != nil {
		t.Fatal(err)
	}
	dets := DetectBlobs(img, 150, 4)
	if len(dets) != 1 {
		t.Fatalf("detections = %d", len(dets))
	}
	if dets[0].X != 50 || dets[0].Y != 60 {
		t.Errorf("centroid (%d,%d), want (50,60)", dets[0].X, dets[0].Y)
	}
	if dets[0].Pixels != 9*9 {
		t.Errorf("pixels = %d, want 81", dets[0].Pixels)
	}
}
