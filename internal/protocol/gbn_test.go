package protocol

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"uavmw/internal/transport"
)

func TestGBNInOrderNoLoss(t *testing.T) {
	var received []string
	var mu sync.Mutex
	var a, b *GoBackN
	a = NewGoBackN("b", func(_ transport.NodeID, payload []byte) error {
		cp := append([]byte(nil), payload...)
		go b.HandlePacket(cp)
		return nil
	}, nil, 10*time.Millisecond, 8)
	b = NewGoBackN("a", func(_ transport.NodeID, payload []byte) error {
		cp := append([]byte(nil), payload...)
		go a.HandlePacket(cp)
		return nil
	}, func(msg []byte) {
		mu.Lock()
		received = append(received, string(msg))
		mu.Unlock()
	}, 10*time.Millisecond, 8)
	defer a.Close()
	defer b.Close()

	const n = 50
	for i := 0; i < n; i++ {
		if err := a.Send([]byte(fmt.Sprintf("m%03d", i))); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.After(5 * time.Second)
	for {
		mu.Lock()
		got := len(received)
		mu.Unlock()
		if got == n {
			break
		}
		select {
		case <-deadline:
			t.Fatalf("delivered %d of %d", got, n)
		case <-time.After(time.Millisecond):
		}
	}
	mu.Lock()
	defer mu.Unlock()
	for i, msg := range received {
		if msg != fmt.Sprintf("m%03d", i) {
			t.Fatalf("out of order at %d: %q", i, msg)
		}
	}
	if a.Unacked() != 0 {
		t.Errorf("unacked = %d", a.Unacked())
	}
}

func TestGBNRecoversFromLoss(t *testing.T) {
	var received []string
	var mu sync.Mutex
	// Seeded random loss: deterministic run-to-run, but free of the
	// modulo-period pathology where the same retransmitted packet is
	// dropped every round.
	rng := rand.New(rand.NewSource(17))
	var a, b *GoBackN
	a = NewGoBackN("b", func(_ transport.NodeID, payload []byte) error {
		mu.Lock()
		drop := payload[0] == gbnData && rng.Float64() < 0.25
		mu.Unlock()
		if drop {
			return nil
		}
		cp := append([]byte(nil), payload...)
		go b.HandlePacket(cp)
		return nil
	}, nil, 5*time.Millisecond, 8)
	b = NewGoBackN("a", func(_ transport.NodeID, payload []byte) error {
		cp := append([]byte(nil), payload...)
		go a.HandlePacket(cp)
		return nil
	}, func(msg []byte) {
		mu.Lock()
		received = append(received, string(msg))
		mu.Unlock()
	}, 5*time.Millisecond, 8)
	defer a.Close()
	defer b.Close()

	const n = 30
	for i := 0; i < n; i++ {
		if err := a.Send([]byte(fmt.Sprintf("m%03d", i))); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.After(10 * time.Second)
	for {
		mu.Lock()
		got := len(received)
		mu.Unlock()
		if got == n {
			break
		}
		select {
		case <-deadline:
			t.Fatalf("delivered %d of %d under loss", got, n)
		case <-time.After(time.Millisecond):
		}
	}
	mu.Lock()
	defer mu.Unlock()
	for i, msg := range received {
		if msg != fmt.Sprintf("m%03d", i) {
			t.Fatalf("order violated at %d: %q", i, msg)
		}
	}
	if st := a.Stats(); st.Retransmits == 0 {
		t.Error("expected retransmissions under loss")
	}
}

func TestGBNWindowBackpressure(t *testing.T) {
	// With acks never arriving, sends beyond the window queue as pending.
	a := NewGoBackN("b", func(transport.NodeID, []byte) error { return nil },
		nil, time.Hour, 4)
	defer a.Close()
	for i := 0; i < 10; i++ {
		if err := a.Send([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if got := a.Unacked(); got != 10 {
		t.Errorf("unacked+pending = %d, want 10", got)
	}
	st := a.Stats()
	if st.Sent != 4 {
		t.Errorf("transmitted %d, want window of 4", st.Sent)
	}
}

func TestGBNCloseRejectsSends(t *testing.T) {
	a := NewGoBackN("b", func(transport.NodeID, []byte) error { return nil }, nil, time.Millisecond, 4)
	a.Close()
	a.Close() // idempotent
	if err := a.Send([]byte("x")); err == nil {
		t.Error("send after close must fail")
	}
}

func TestGBNStaleAndGarbagePackets(t *testing.T) {
	var a *GoBackN
	a = NewGoBackN("b", func(transport.NodeID, []byte) error { return nil },
		func([]byte) {}, time.Hour, 4)
	defer a.Close()
	a.HandlePacket(nil)                                     // too short
	a.HandlePacket([]byte{9, 0, 0})                         // bad kind, truncated
	a.HandlePacket([]byte{gbnAck, 0, 0, 0, 0, 0, 0, 0, 99}) // ack for nothing sent is stale? seq 99 > base
	_ = a
}
