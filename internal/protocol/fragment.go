package protocol

import (
	"encoding/binary"
	"fmt"
	"sync"
	"time"

	"uavmw/internal/bufpool"
	"uavmw/internal/clock"
	"uavmw/internal/encoding"
	"uavmw/internal/transport"
)

// Datagram transports bound payload size; frames beyond the MTU are split
// into MTFragment frames and reassembled on arrival. Fragment identity is
// (sender, fragment-stream id); fragments of one message share the id the
// sender allocated for it.
//
// Fragment payload layout:
//
//	u64 msgID   — sender-unique id of the original frame
//	u16 index   — fragment position
//	u16 total   — fragment count
//	raw bytes   — slice of the original encoded frame

// DefaultMTU is the fragmentation threshold for UDP-class transports,
// chosen to fit a 1500-byte Ethernet MTU with IP/UDP/envelope headroom.
const DefaultMTU = 1400

// maxFragments bounds reassembly memory per message.
const maxFragments = 1 << 14

// Fragment splits an encoded frame into MTFragment frames of at most mtu
// payload bytes each. Frames already within the MTU are returned unchanged
// as a single element.
func Fragment(raw []byte, msgID uint64, mtu int) ([][]byte, error) {
	if mtu <= 0 {
		mtu = DefaultMTU
	}
	if len(raw) <= mtu {
		return [][]byte{raw}, nil
	}
	total := (len(raw) + mtu - 1) / mtu
	if total > maxFragments {
		return nil, fmt.Errorf("protocol: %d fragments exceeds %d: %w", total, maxFragments, ErrBadFrame)
	}
	// Fragments inherit the original frame's priority so they drain from
	// the same egress lane and the ARQ resend path (which lanes by the
	// encoded header) cannot promote bulk to normal or demote critical.
	pr := PeekPriority(raw)
	out := make([][]byte, 0, total)
	for i := 0; i < total; i++ {
		start := i * mtu
		end := min(start+mtu, len(raw))
		// One exact-size allocation per fragment: the frame header goes
		// through AppendFrame with an empty payload, then the fragment
		// header and chunk are appended directly in wire position.
		//wirepath:alloc fragments are retained by ARQ/egress, so they are GC-owned
		frame := make([]byte, 0, frameHeaderLen+fragHeaderLen+(end-start))
		frame, err := AppendFrame(frame, &Frame{Type: MTFragment, Priority: pr, Seq: msgID})
		if err != nil {
			return nil, err
		}
		frame = binary.BigEndian.AppendUint64(frame, msgID)
		frame = binary.BigEndian.AppendUint16(frame, uint16(i))
		frame = binary.BigEndian.AppendUint16(frame, uint16(total))
		out = append(out, append(frame, raw[start:end]...))
	}
	return out, nil
}

// fragHeaderLen is the fragment payload header: u64 msgID, u16 index, u16
// total.
const fragHeaderLen = 12

// Reassembler collects MTFragment frames and yields completed original
// frames. Incomplete messages are discarded after a timeout so lost
// fragments cannot pin memory.
type Reassembler struct {
	ttl time.Duration
	clk clock.Clock

	mu      sync.Mutex
	pending map[reasmKey]*reasmState
}

type reasmKey struct {
	from  transport.NodeID
	msgID uint64
}

type reasmState struct {
	parts    [][]byte
	received int
	deadline time.Time
}

// DefaultReassemblyTTL bounds how long a partial message is retained.
const DefaultReassemblyTTL = 5 * time.Second

// NewReassembler builds a reassembler with the given partial-message TTL
// (0 means DefaultReassemblyTTL). clk is the time source for expiry; nil
// means the wall clock.
func NewReassembler(ttl time.Duration, clk clock.Clock) *Reassembler {
	if ttl <= 0 {
		ttl = DefaultReassemblyTTL
	}
	return &Reassembler{
		ttl:     ttl,
		clk:     clock.Or(clk),
		pending: make(map[reasmKey]*reasmState),
	}
}

// Offer consumes one MTFragment frame from a sender. When the final
// fragment arrives, the reassembled original frame bytes are returned;
// otherwise nil.
func (ra *Reassembler) Offer(from transport.NodeID, f *Frame) ([]byte, error) {
	if f.Type != MTFragment {
		return nil, fmt.Errorf("protocol: reassembler got %v: %w", f.Type, ErrBadFrame)
	}
	r := encoding.NewReader(f.Payload)
	msgID := r.Uint64()
	index := int(r.Uint16())
	total := int(r.Uint16())
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("protocol: fragment header: %w", err)
	}
	if total == 0 || total > maxFragments || index >= total {
		return nil, fmt.Errorf("protocol: fragment %d/%d: %w", index, total, ErrBadFrame)
	}
	data := r.Raw(r.Remaining())

	ra.mu.Lock()
	defer ra.mu.Unlock()
	now := ra.clk.Now()
	ra.expireLocked(now)

	key := reasmKey{from: from, msgID: msgID}
	st := ra.pending[key]
	if st == nil {
		st = &reasmState{parts: make([][]byte, total)}
		ra.pending[key] = st
	}
	if len(st.parts) != total {
		// Sender restarted the id with a different shape; reset.
		st.parts = make([][]byte, total)
		st.received = 0
	}
	st.deadline = now.Add(ra.ttl)
	if st.parts[index] == nil {
		// Fragment data aliases the receive buffer, which is recycled the
		// moment the handler returns; reassembly state must own its bytes.
		st.parts[index] = bufpool.Copy(data)
		st.received++
	}
	if st.received < total {
		return nil, nil
	}
	delete(ra.pending, key)
	size := 0
	for _, p := range st.parts {
		size += len(p)
	}
	//wirepath:alloc the reassembled frame is handed to the receive path, which owns it
	out := make([]byte, 0, size)
	for _, p := range st.parts {
		out = append(out, p...)
	}
	return out, nil
}

// expireLocked drops timed-out partial messages. Caller holds ra.mu.
func (ra *Reassembler) expireLocked(now time.Time) {
	for key, st := range ra.pending {
		if now.After(st.deadline) {
			delete(ra.pending, key)
		}
	}
}

// PendingMessages reports partially reassembled message count.
func (ra *Reassembler) PendingMessages() int {
	ra.mu.Lock()
	defer ra.mu.Unlock()
	return len(ra.pending)
}
