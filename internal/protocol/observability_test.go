package protocol

import (
	"errors"
	"sync"
	"testing"
	"time"

	"uavmw/internal/clock"
	"uavmw/internal/metrics"
	"uavmw/internal/transport"
	"uavmw/internal/uerr"
)

// errCount sums a component's typed-error family by category.
func errCount(reg *metrics.Registry, component string, cat uerr.Category) uint64 {
	return reg.SumCounters(component, "errors", metrics.L("category", cat.String()))
}

// A first-transmission failure must reach the result callback as a typed
// CatSend error and increment arq.errors{send}.
func TestARQFirstTransmitFailureIsTypedAndCounted(t *testing.T) {
	reg := metrics.NewRegistry()
	a := NewARQ(func(transport.NodeID, []byte) error {
		return errors.New("no route")
	}, WithMetrics(reg))
	defer a.Close()

	var mu sync.Mutex
	var got error
	done := make(chan struct{})
	err := a.Send("peer", 1, []byte("x"), func(e error) {
		mu.Lock()
		got = e
		mu.Unlock()
		close(done)
	})
	if err != nil {
		t.Fatal(err)
	}
	<-done
	mu.Lock()
	defer mu.Unlock()
	if got == nil {
		t.Fatal("failing first transmission reported success")
	}
	if !uerr.IsCategory(got, uerr.CatSend) {
		t.Fatalf("result error %v is not CatSend", got)
	}
	if code, _ := uerr.CodeOf(got); code != codeARQFirstTx {
		t.Fatalf("result error code %q, want %q", code, codeARQFirstTx)
	}
	if n := errCount(reg, "arq", uerr.CatSend); n != 1 {
		t.Fatalf("arq.errors{send} = %d, want 1", n)
	}
}

// Retransmission sends used to be discarded with `_ =`; every failed
// retry must now count under arq.errors{send} even though the timer is
// the recovery path.
func TestARQRetransmitFailuresAreCounted(t *testing.T) {
	reg := metrics.NewRegistry()
	clk := clock.NewVirtual()
	first := true
	a := NewARQ(func(transport.NodeID, []byte) error {
		if first {
			first = false
			return nil // first transmission succeeds; retries fail
		}
		return errors.New("bearer blackout")
	}, WithMetrics(reg), WithClock(clk), WithTimeout(10*time.Millisecond), WithMaxRetries(3))
	defer a.Close()

	done := make(chan error, 1)
	if err := a.Send("peer", 7, []byte("x"), func(e error) { done <- e }); err != nil {
		t.Fatal(err)
	}
	var final error
	clock.Blocking(clk, func() {
		for {
			select {
			case final = <-done:
				return
			default:
				clk.Sleep(5 * time.Millisecond)
			}
		}
	})
	if !uerr.Is(final, ErrTimeout) {
		t.Fatalf("final error %v, want ErrTimeout after exhausted retries", final)
	}
	if !uerr.IsCategory(final, uerr.CatTimeout) {
		t.Fatalf("final error %v is not CatTimeout", final)
	}
	if n := errCount(reg, "arq", uerr.CatSend); n == 0 {
		t.Fatal("failed retransmissions left arq.errors{send} at 0")
	}
	if n := errCount(reg, "arq", uerr.CatTimeout); n != 1 {
		t.Fatalf("arq.errors{timeout} = %d, want 1", n)
	}
}

// Duplicate in-flight sequence numbers are protocol violations and must
// be typed as such.
func TestARQDuplicateSeqIsProtocolViolation(t *testing.T) {
	reg := metrics.NewRegistry()
	a := NewARQ(func(transport.NodeID, []byte) error { return nil }, WithMetrics(reg))
	defer a.Close()

	if err := a.Send("peer", 1, []byte("x"), nil); err != nil {
		t.Fatal(err)
	}
	err := a.Send("peer", 1, []byte("y"), nil)
	if !uerr.IsCode(err, codeARQDupSeq) {
		t.Fatalf("duplicate send returned %v, want %q", err, codeARQDupSeq)
	}
	if n := errCount(reg, "arq", uerr.CatProtocol); n != 1 {
		t.Fatalf("arq.errors{protocol_violation} = %d, want 1", n)
	}
}

// GBN stream transmissions ride the same contract: a failing datagram
// send is counted under gbn.errors{send}, never silently dropped.
func TestGBNTransmitFailuresAreCounted(t *testing.T) {
	reg := metrics.NewRegistry()
	g := NewGoBackN("peer", func(transport.NodeID, []byte) error {
		return errors.New("no route")
	}, nil, time.Second, 4, WithGBNMetrics(reg))
	defer g.Close()

	if err := g.Send([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	if n := errCount(reg, "gbn", uerr.CatSend); n != 1 {
		t.Fatalf("gbn.errors{send} = %d, want 1", n)
	}
}
