package protocol

import (
	"bytes"
	"math/rand"
	"testing"
	"time"

	"uavmw/internal/qos"
)

func TestFragmentPassthroughUnderMTU(t *testing.T) {
	raw := []byte("small frame")
	frags, err := Fragment(raw, 1, 1400)
	if err != nil {
		t.Fatal(err)
	}
	if len(frags) != 1 || !bytes.Equal(frags[0], raw) {
		t.Error("under-MTU frame must pass through unchanged")
	}
}

func TestFragmentReassembleRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	for _, size := range []int{1401, 2800, 5000, 100_000} {
		raw := make([]byte, size)
		r.Read(raw)
		frags, err := Fragment(raw, 42, 1400)
		if err != nil {
			t.Fatal(err)
		}
		if len(frags) < 2 {
			t.Fatalf("size %d produced %d fragments", size, len(frags))
		}
		ra := NewReassembler(0, nil)
		var out []byte
		for i, fr := range frags {
			f, err := DecodeFrame(fr)
			if err != nil {
				t.Fatalf("fragment %d decode: %v", i, err)
			}
			if f.Type != MTFragment {
				t.Fatalf("fragment %d type %v", i, f.Type)
			}
			got, err := ra.Offer("src", f)
			if err != nil {
				t.Fatalf("Offer %d: %v", i, err)
			}
			if i < len(frags)-1 && got != nil {
				t.Fatal("complete before final fragment")
			}
			if i == len(frags)-1 {
				out = got
			}
		}
		if !bytes.Equal(out, raw) {
			t.Fatalf("size %d: reassembly mismatch", size)
		}
		if ra.PendingMessages() != 0 {
			t.Error("completed message still pending")
		}
	}
}

func TestFragmentReassembleOutOfOrderAndDuplicates(t *testing.T) {
	raw := make([]byte, 10_000)
	rand.New(rand.NewSource(8)).Read(raw)
	frags, err := Fragment(raw, 7, 1400)
	if err != nil {
		t.Fatal(err)
	}
	// Shuffle and duplicate every fragment.
	order := rand.New(rand.NewSource(9)).Perm(len(frags))
	ra := NewReassembler(0, nil)
	var out []byte
	offered := 0
	for _, idx := range order {
		f, _ := DecodeFrame(frags[idx])
		got, err := ra.Offer("src", f)
		if err != nil {
			t.Fatal(err)
		}
		offered++
		if got != nil {
			out = got
		}
		// Duplicate offer of same fragment must be harmless.
		if got2, err := ra.Offer("src", f); err != nil {
			t.Fatal(err)
		} else if got2 != nil && out == nil {
			out = got2
		}
	}
	if !bytes.Equal(out, raw) {
		t.Fatal("out-of-order reassembly mismatch")
	}
}

func TestFragmentSenderIsolation(t *testing.T) {
	raw := make([]byte, 3000)
	frags, _ := Fragment(raw, 5, 1400)
	ra := NewReassembler(0, nil)
	// Same msgID from two senders must not cross-pollinate.
	f0, _ := DecodeFrame(frags[0])
	if got, _ := ra.Offer("a", f0); got != nil {
		t.Fatal("premature completion")
	}
	for i, fr := range frags {
		f, _ := DecodeFrame(fr)
		got, err := ra.Offer("b", f)
		if err != nil {
			t.Fatal(err)
		}
		if i == len(frags)-1 && got == nil {
			t.Fatal("sender b never completed")
		}
	}
	if ra.PendingMessages() != 1 {
		t.Errorf("pending = %d, want 1 (sender a partial)", ra.PendingMessages())
	}
}

func TestFragmentTTLExpiry(t *testing.T) {
	raw := make([]byte, 3000)
	frags, _ := Fragment(raw, 11, 1400)
	ra := NewReassembler(10*time.Millisecond, nil)
	f0, _ := DecodeFrame(frags[0])
	if _, err := ra.Offer("a", f0); err != nil {
		t.Fatal(err)
	}
	if ra.PendingMessages() != 1 {
		t.Fatal("fragment not pending")
	}
	time.Sleep(20 * time.Millisecond)
	// Any new offer triggers expiry sweep.
	other, _ := Fragment(make([]byte, 2000), 12, 1400)
	fo, _ := DecodeFrame(other[0])
	if _, err := ra.Offer("b", fo); err != nil {
		t.Fatal(err)
	}
	if ra.PendingMessages() != 1 {
		t.Errorf("expired partial not dropped: pending=%d", ra.PendingMessages())
	}
}

func TestFragmentBadInputs(t *testing.T) {
	ra := NewReassembler(0, nil)
	// Non-fragment frame.
	if _, err := ra.Offer("a", &Frame{Type: MTEvent}); err == nil {
		t.Error("non-fragment frame must fail")
	}
	// Truncated fragment header.
	if _, err := ra.Offer("a", &Frame{Type: MTFragment, Payload: []byte{1, 2}}); err == nil {
		t.Error("truncated header must fail")
	}
	// index >= total.
	w := fragHeader(1, 5, 2)
	if _, err := ra.Offer("a", &Frame{Type: MTFragment, Payload: w}); err == nil {
		t.Error("index >= total must fail")
	}
	// total == 0.
	w = fragHeader(1, 0, 0)
	if _, err := ra.Offer("a", &Frame{Type: MTFragment, Payload: w}); err == nil {
		t.Error("zero total must fail")
	}
}

func fragHeader(msgID uint64, index, total uint16) []byte {
	out := make([]byte, 12)
	for i := 0; i < 8; i++ {
		out[7-i] = byte(msgID >> (8 * i))
	}
	out[8], out[9] = byte(index>>8), byte(index)
	out[10], out[11] = byte(total>>8), byte(total)
	return out
}

func TestFragmentTooManyFragments(t *testing.T) {
	raw := make([]byte, maxFragments*2+10)
	if _, err := Fragment(raw, 1, 1); err == nil {
		t.Error("fragment count beyond cap must fail")
	}
}

func TestFragmentMTUDefault(t *testing.T) {
	raw := make([]byte, DefaultMTU+1)
	frags, err := Fragment(raw, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(frags) != 2 {
		t.Errorf("default MTU fragmentation produced %d parts", len(frags))
	}
}

// TestFragmentsInheritPriority pins the egress-lane property: fragments of
// an oversized frame carry the original frame's priority in their own
// headers, so priority-peeking send paths (ARQ resends, egress laning)
// keep every fragment in the original class.
func TestFragmentsInheritPriority(t *testing.T) {
	for _, pr := range qos.Levels() {
		raw, err := EncodeFrame(&Frame{
			Type: MTFileChunk, Priority: pr, Channel: "big", Seq: 7,
			Payload: make([]byte, 4000),
		})
		if err != nil {
			t.Fatal(err)
		}
		parts, err := Fragment(raw, 7, 1400)
		if err != nil {
			t.Fatal(err)
		}
		if len(parts) < 2 {
			t.Fatalf("expected fragmentation, got %d part(s)", len(parts))
		}
		for i, part := range parts {
			f, err := DecodeFrame(part)
			if err != nil {
				t.Fatal(err)
			}
			if f.Type != MTFragment {
				t.Fatalf("part %d type %v", i, f.Type)
			}
			if f.Priority != pr {
				t.Fatalf("fragment %d priority = %v, want %v", i, f.Priority, pr)
			}
			if got := PeekPriority(part); got != pr {
				t.Fatalf("PeekPriority(fragment %d) = %v, want %v", i, got, pr)
			}
		}
	}
}
