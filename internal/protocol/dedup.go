package protocol

import (
	"sync"

	"uavmw/internal/transport"
)

// Dedup suppresses duplicate messages on the receiving side of the ARQ
// scheme: when an ACK is lost the sender retransmits, and the receiver must
// acknowledge again but deliver only once. Message identity is (sender,
// seq) within one engine's scope.
//
// Per sender it keeps a ring of the most recent window seqs; anything still
// in the ring is a duplicate. The window must exceed the maximum number of
// messages a sender can have in flight, which the ARQ retry budget bounds.
type Dedup struct {
	window int

	mu      sync.Mutex
	senders map[transport.NodeID]*dedupWindow
}

type dedupWindow struct {
	ring []uint64
	set  map[uint64]struct{}
	next int
	full bool
}

// DefaultDedupWindow is ample for the default ARQ in-flight bound.
const DefaultDedupWindow = 4096

// NewDedup builds a suppressor with the given per-sender window (0 means
// DefaultDedupWindow).
func NewDedup(window int) *Dedup {
	if window <= 0 {
		window = DefaultDedupWindow
	}
	return &Dedup{
		window:  window,
		senders: make(map[transport.NodeID]*dedupWindow),
	}
}

// Seen records (from, seq) and reports whether it was already present.
func (d *Dedup) Seen(from transport.NodeID, seq uint64) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	w := d.senders[from]
	if w == nil {
		w = &dedupWindow{
			ring: make([]uint64, d.window),
			set:  make(map[uint64]struct{}, d.window),
		}
		d.senders[from] = w
	}
	if _, dup := w.set[seq]; dup {
		return true
	}
	if w.full {
		delete(w.set, w.ring[w.next])
	}
	w.ring[w.next] = seq
	w.set[seq] = struct{}{}
	w.next++
	if w.next == len(w.ring) {
		w.next = 0
		w.full = true
	}
	return false
}

// Forget drops all state for a sender (e.g. after its container restarts
// with fresh sequence numbers).
func (d *Dedup) Forget(from transport.NodeID) {
	d.mu.Lock()
	defer d.mu.Unlock()
	delete(d.senders, from)
}

// Senders reports how many peers have dedup state, for diagnostics.
func (d *Dedup) Senders() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.senders)
}
