package protocol

import (
	"testing"
	"time"

	"uavmw/internal/bufpool"
	"uavmw/internal/qos"
	"uavmw/internal/transport"
)

// The wire path's zero-allocation contract, pinned with exact counts.
// These gates are the reason AppendFrame/DecodeFrameInto/AppendBatch exist:
// if a change reintroduces a per-frame heap allocation on the steady-state
// encode or decode path, the numbers here move and the test fails.

func wireTestFrame(payload []byte) *Frame {
	return &Frame{
		Type:     MTSample,
		Priority: qos.PriorityNormal,
		Channel:  "alloc.gate/topic",
		Seq:      42,
		Payload:  payload,
	}
}

func TestAppendFrameAllocs(t *testing.T) {
	f := wireTestFrame(make([]byte, 64))
	buf := make([]byte, 0, FrameWireSize(f))
	allocs := testing.AllocsPerRun(200, func() {
		if _, err := AppendFrame(buf[:0], f); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("AppendFrame: %v allocs/op, want 0", allocs)
	}
}

func TestDecodeFrameIntoAllocs(t *testing.T) {
	raw, err := EncodeFrame(wireTestFrame(make([]byte, 64)))
	if err != nil {
		t.Fatal(err)
	}
	var f Frame
	// Warm the channel-name intern table so the steady state is measured.
	if err := DecodeFrameInto(&f, raw); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		if err := DecodeFrameInto(&f, raw); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("DecodeFrameInto: %v allocs/op, want 0", allocs)
	}
}

func TestEncodeDecodePooledRoundTripAllocs(t *testing.T) {
	// The full steady-state cycle core runs per frame: pooled buffer out,
	// append-encode, decode into a pooled frame, everything released.
	src := wireTestFrame(make([]byte, 64))
	// Warm pools and intern table.
	for i := 0; i < 4; i++ {
		buf, _ := AppendFrame(bufpool.Get(FrameWireSize(src)), src)
		f := GetFrame()
		if err := DecodeFrameInto(f, buf); err != nil {
			t.Fatal(err)
		}
		PutFrame(f)
		bufpool.Put(buf)
	}
	allocs := testing.AllocsPerRun(200, func() {
		buf, err := AppendFrame(bufpool.Get(FrameWireSize(src)), src)
		if err != nil {
			t.Fatal(err)
		}
		f := GetFrame()
		if err := DecodeFrameInto(f, buf); err != nil {
			t.Fatal(err)
		}
		PutFrame(f)
		bufpool.Put(buf)
	})
	if allocs != 0 {
		t.Errorf("pooled encode→decode round trip: %v allocs/op, want 0", allocs)
	}
}

func TestAppendBatchAllocs(t *testing.T) {
	var frames [][]byte
	for _, n := range []int{32, 64, 128} {
		fr, err := EncodeFrame(wireTestFrame(make([]byte, n)))
		if err != nil {
			t.Fatal(err)
		}
		frames = append(frames, fr)
	}
	size := BatchOverhead(len(frames))
	for _, fr := range frames {
		size += len(fr)
	}
	buf := make([]byte, 0, size)
	allocs := testing.AllocsPerRun(200, func() {
		if _, err := AppendBatch(buf[:0], frames, qos.PriorityNormal); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("AppendBatch: %v allocs/op, want 0", allocs)
	}
}

func TestBufpoolCycleAllocs(t *testing.T) {
	// Warm one buffer into the class.
	bufpool.Put(bufpool.Get(512))
	allocs := testing.AllocsPerRun(200, func() {
		b := bufpool.Get(512)
		bufpool.Put(b)
	})
	if allocs != 0 {
		t.Errorf("bufpool Get/Put cycle: %v allocs/op, want 0", allocs)
	}
}

func BenchmarkFrameEncodeDecode(b *testing.B) {
	for _, size := range []int{16, 256, 1024} {
		payload := make([]byte, size)
		src := wireTestFrame(payload)
		b.Run(sizeName(size)+"/pooled", func(b *testing.B) {
			b.ReportAllocs()
			b.SetBytes(int64(FrameWireSize(src)))
			for i := 0; i < b.N; i++ {
				buf, err := AppendFrame(bufpool.Get(FrameWireSize(src)), src)
				if err != nil {
					b.Fatal(err)
				}
				f := GetFrame()
				if err := DecodeFrameInto(f, buf); err != nil {
					b.Fatal(err)
				}
				PutFrame(f)
				bufpool.Put(buf)
			}
		})
		b.Run(sizeName(size)+"/legacy", func(b *testing.B) {
			b.ReportAllocs()
			b.SetBytes(int64(FrameWireSize(src)))
			for i := 0; i < b.N; i++ {
				raw, err := EncodeFrame(src)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := DecodeFrame(raw); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// TestARQRetransmitAllocs pins the allocation cost of one timer-fired
// retransmission: pending lookup, backoff computation, timer rearm, and the
// wire send. The frame bytes themselves are reused, so the only intrinsic
// allocations left are the AfterFunc rearm — the runtime timer plus the
// retransmit closure it captures. That floor is pinned here so any extra
// per-retransmit heap work (re-encoding, map churn, stats boxing) fails
// the gate.
func TestARQRetransmitAllocs(t *testing.T) {
	send := func(transport.NodeID, []byte) error { return nil }
	// A huge timeout keeps the armed timers from firing mid-measurement;
	// the test invokes the retransmit path directly instead.
	a := NewARQ(send, WithTimeout(time.Hour), WithMaxRetries(1<<30))
	defer a.Close()

	frame, err := EncodeFrame(wireTestFrame(make([]byte, 64)))
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Send("peer", 1, frame, func(error) {}); err != nil {
		t.Fatal(err)
	}
	key := arqKey{to: "peer", seq: 1}
	for i := 0; i < 4; i++ {
		a.retransmit(key, 1)
	}
	allocs := testing.AllocsPerRun(100, func() {
		a.retransmit(key, 1)
	})
	// Rearm cost: time.AfterFunc's timer object plus the closure capturing
	// (key, attempt). Anything above that is a regression.
	if allocs > 3 {
		t.Errorf("ARQ retransmit: %v allocs/op, want <= 3 (timer rearm only)", allocs)
	}
}

func sizeName(n int) string {
	switch {
	case n >= 1024 && n%1024 == 0:
		return string(rune('0'+n/1024)) + "KiB"
	default:
		s := ""
		for n > 0 {
			s = string(rune('0'+n%10)) + s
			n /= 10
		}
		return s + "B"
	}
}
