package protocol

import (
	"encoding/binary"
	"fmt"

	"uavmw/internal/encoding"
	"uavmw/internal/qos"
)

// Batch wire layout. An MTBatch frame is an ordinary frame whose payload is
// a sequence of complete encoded frames, each prefixed by its length:
//
//	| u32 len | frame bytes | u32 len | frame bytes | ...
//
// The outer frame carries no sequence semantics of its own (Seq is unused,
// never ack-required); reliability belongs to the inner frames, which the
// receiver feeds through the normal decode path one by one. The outer
// Priority is the egress lane the batch was drained from, so transports or
// diagnostics that peek at the header still see the right class.

// BatchEntryOverhead is the per-inner-frame cost of riding in a batch.
const BatchEntryOverhead = 4

// batchHeaderOverhead is the outer frame header cost (magic u16, version,
// type, flags, encoding, priority, empty-channel u32 length, seq u64).
const batchHeaderOverhead = 19

// BatchOverhead returns the wire bytes an n-frame batch adds on top of the
// inner frames themselves. Egress uses it to keep coalesced datagrams under
// the MTU.
func BatchOverhead(n int) int { return batchHeaderOverhead + n*BatchEntryOverhead }

// AppendBatch serializes an MTBatch datagram containing the given encoded
// frames onto dst and returns the extended slice. Each inner frame is
// copied exactly once, directly into its wire position — no intermediate
// payload assembly — and the output is byte-identical to what EncodeFrame
// would produce for the equivalent MTBatch frame. dst is typically a pooled
// buffer sized with BatchOverhead plus the inner lengths. On error dst is
// returned unmodified.
func AppendBatch(dst []byte, frames [][]byte, p qos.Priority) ([]byte, error) {
	if len(frames) == 0 {
		return dst, fmt.Errorf("protocol: empty batch: %w", ErrBadFrame)
	}
	// Outer frame header: empty channel, no seq, no flags — batches carry
	// no sequence semantics of their own.
	dst = binary.BigEndian.AppendUint16(dst, frameMagic)
	dst = append(dst, frameVersion, uint8(MTBatch), 0, 0, uint8(p))
	dst = binary.BigEndian.AppendUint32(dst, 0) // channel length
	dst = binary.BigEndian.AppendUint64(dst, 0) // seq
	for _, f := range frames {
		dst = binary.BigEndian.AppendUint32(dst, uint32(len(f)))
		dst = append(dst, f...)
	}
	return dst, nil
}

// EncodeBatch packs the given encoded frames into one MTBatch datagram.
// Order is preserved; the outer frame's priority is p.
func EncodeBatch(frames [][]byte, p qos.Priority) ([]byte, error) {
	size := BatchOverhead(len(frames))
	for _, f := range frames {
		size += len(f)
	}
	//wirepath:alloc exact-size, GC-owned encode for callers that retain the result
	out, err := AppendBatch(make([]byte, 0, size), frames, p)
	if err != nil {
		return nil, err
	}
	return out, nil
}

// DecodeBatch splits an MTBatch payload back into the raw inner frames. The
// returned slices alias payload; callers that retain them must copy.
func DecodeBatch(payload []byte) ([][]byte, error) {
	r := encoding.NewReader(payload)
	var frames [][]byte
	for r.Remaining() > 0 {
		n := r.Uint32()
		if err := r.Err(); err != nil {
			return nil, fmt.Errorf("protocol: batch entry: %w", err)
		}
		if int(n) > r.Remaining() {
			return nil, fmt.Errorf("protocol: batch entry %d bytes, %d left: %w",
				n, r.Remaining(), ErrBadFrame)
		}
		frames = append(frames, r.Raw(int(n)))
	}
	if len(frames) == 0 {
		return nil, fmt.Errorf("protocol: empty batch: %w", ErrBadFrame)
	}
	return frames, nil
}

// priorityOffset is the byte position of the Priority field in an encoded
// frame header: magic u16, version u8, type u8, flags u8, encoding u8.
const priorityOffset = 6

// PeekPriority reads the scheduler class out of an encoded frame without a
// full decode. The egress plane uses it to lane retransmissions, which the
// ARQ engine holds only in encoded form. Undecodable input maps to
// PriorityNormal so a malformed frame still drains.
func PeekPriority(raw []byte) qos.Priority {
	if len(raw) <= priorityOffset ||
		raw[0] != byte(frameMagic>>8) || raw[1] != byte(frameMagic&0xff) {
		return qos.PriorityNormal
	}
	p := qos.Priority(raw[priorityOffset])
	if !p.Valid() {
		return qos.PriorityNormal
	}
	return p
}
