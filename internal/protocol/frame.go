// Package protocol implements the PEPt "Protocol" subsystem (§6 of the
// paper): framing encoded data "to denote the intent of the message" plus
// the low-level bookkeeping the paper assigns to this layer — application-
// level acknowledgment and retransmission (§4.2), fragmentation of payloads
// beyond the datagram MTU, and duplicate suppression.
//
// # Buffer ownership
//
// The codec is built for a zero-allocation wire path, which makes aliasing
// explicit:
//
//   - Encoding never retains its input. AppendFrame/AppendBatch copy the
//     frame (including Payload) into dst; the caller may reuse or release
//     the Frame and its Payload the moment the call returns.
//   - Decoding never copies its input. DecodeFrame/DecodeFrameInto set
//     Payload to a sub-slice of data, and DecodeBatch returns sub-slices of
//     the batch payload. Whoever owns the encoded bytes (typically a pooled
//     receive buffer) must keep them alive — and unmodified — for as long
//     as any decoded view is in use, and anything that outlives that window
//     (handler state, reassembly, dedup) must copy first.
//   - Frames handed to Handle-style callbacks follow the same rule as
//     transport.Packet: use within the call, copy to retain.
//   - The container's receive path applies this end to end: the ingress
//     pipeline (internal/ingress) holds the refcounted pooled receive
//     buffer while a shard worker decodes and dispatches, releasing it
//     when the drain batch returns. Decoded payload views are therefore
//     valid exactly for the dispatch call; per-source state that outlives
//     it (reassembly buffers, dedup windows) copies what it keeps.
package protocol

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"time"

	"uavmw/internal/encoding"
	"uavmw/internal/qos"
)

// MsgType denotes the intent of a frame.
type MsgType uint8

// Frame types, grouped by subsystem.
const (
	// Discovery / container management (§3).
	MTAnnounce  MsgType = iota + 1 // container announces its services
	MTHeartbeat                    // liveness + load report
	MTBye                          // graceful shutdown notice

	// Variables (§4.1).
	MTSubscribe   // subscriber joins a variable
	MTUnsubscribe // subscriber leaves a variable
	MTSnapshotReq // request for guaranteed initial exact value
	MTSnapshotRep // reliable reply carrying latest value
	MTSample      // best-effort published sample

	// Events (§4.2).
	MTEvent    // guaranteed notification
	MTEventAck // subscriber acknowledgment

	// Remote invocation (§4.3).
	MTCall   // request
	MTReturn // successful reply
	MTError  // failed reply

	// File transmission (§4.4).
	MTFileAnnounce  // announce phase: resource metadata
	MTFileSubscribe // receiver subscribes to a transfer
	MTFileChunk     // multicast data chunk
	MTFileQuery     // publisher asks completion status
	MTFileAck       // receiver has all chunks
	MTFileNack      // receiver lacks chunks (compressed list)
	MTFileCancel    // transfer aborted / receiver leaving

	// Transport-level.
	MTFragment // piece of an oversized frame
	MTAck      // ARQ acknowledgment of any FlagAckRequired frame

	// Events, group-addressed mode (§4.1 bandwidth argument applied to
	// §4.2 delivery). Appended after the transport types to keep existing
	// wire values stable.
	MTEventNack // subscriber reports per-topic sequence gaps

	// Remote invocation, admission control (§4.3 bounded-latency calls).
	// A provider answers MTCall with MTBusy instead of queueing a request
	// it cannot serve in time (concurrency limit reached, or the call's
	// wire-propagated deadline budget already spent), so the caller fails
	// over to a redundant provider immediately.
	MTBusy // provider sheds the request; caller should fail over

	// Discovery, incremental mode (§3 name management at fleet scale).
	// Registration changes multicast a compact versioned delta the moment
	// they happen; the periodic beacon is a constant-size digest
	// (MTHeartbeat, defined above); receivers that observe a version gap,
	// an unknown node, or a fresh epoch pull the full record set unicast
	// (anti-entropy sync), chunked under the MTU and carried over ARQ.
	MTAnnounceDelta // added/withdrawn records since the previous version
	MTSyncReq       // receiver asks a node for its full record set
	MTSyncRep       // one chunk of the full record set

	// Egress coalescing (§6 framing, transmit side). While small frames
	// for the same destination wait in an egress lane, the plane packs
	// them into one MTBatch datagram — fewer syscalls and wire packets on
	// small-frame-heavy paths. The payload is a sequence of length-
	// prefixed complete frames (see EncodeBatch); receivers unpack and
	// route each inner frame exactly as if it had arrived alone, so
	// acknowledgment, dedup and priority scheduling are unaffected.
	MTBatch // container of length-prefixed coalesced frames

	// Bearer plane (multi-datalink nodes). Each bearer's link monitor sends
	// a lightweight MTProbe to known peers when the bearer has been idle,
	// and the peer echoes the payload back as MTProbeEcho on the same
	// bearer. The round trip gives per-bearer liveness and RTT even on
	// links that carry no application traffic, and is how a blacked-out
	// bearer's recovery is detected.
	MTProbe     // link-monitor probe: u64 nonce payload
	MTProbeEcho // probe reply: nonce echoed verbatim

	mtMax // sentinel
)

// Frame flag bits.
const (
	// FlagAckRequired asks the receiving container to reply MTAck with
	// the same Seq; the sender's ARQ engine retransmits until it does.
	FlagAckRequired uint8 = 1 << 0
	// FlagAppError marks an MTError frame as an application-level
	// failure (no failover) rather than an infrastructure failure.
	FlagAppError uint8 = 1 << 1
	// FlagHasBudget marks a frame that carries a deadline budget word
	// after the sequence number: the sender's remaining deadline, so
	// receivers can shed work that can no longer meet it (§4.3). Only
	// MTCall frames set it today, but the field is type-agnostic.
	FlagHasBudget uint8 = 1 << 2
)

// String implements fmt.Stringer.
func (m MsgType) String() string {
	names := [...]string{
		MTAnnounce: "announce", MTHeartbeat: "heartbeat", MTBye: "bye",
		MTSubscribe: "subscribe", MTUnsubscribe: "unsubscribe",
		MTSnapshotReq: "snapshot-req", MTSnapshotRep: "snapshot-rep", MTSample: "sample",
		MTEvent: "event", MTEventAck: "event-ack",
		MTCall: "call", MTReturn: "return", MTError: "error",
		MTFileAnnounce: "file-announce", MTFileSubscribe: "file-subscribe",
		MTFileChunk: "file-chunk", MTFileQuery: "file-query",
		MTFileAck: "file-ack", MTFileNack: "file-nack", MTFileCancel: "file-cancel",
		MTFragment: "fragment", MTAck: "ack", MTEventNack: "event-nack",
		MTBusy: "busy", MTAnnounceDelta: "announce-delta",
		MTSyncReq: "sync-req", MTSyncRep: "sync-rep", MTBatch: "batch",
		MTProbe: "probe", MTProbeEcho: "probe-echo",
	}
	if int(m) < len(names) && names[m] != "" {
		return names[m]
	}
	return fmt.Sprintf("msgtype(%d)", uint8(m))
}

// Valid reports whether m is a defined frame type.
func (m MsgType) Valid() bool { return m >= MTAnnounce && m < mtMax }

// Frame is one protocol message. Channel scopes the frame to a named
// primitive instance ("gps.position", "mission.photo", ...); Seq identifies
// the message for acknowledgment, dedup and reply matching.
type Frame struct {
	// Type is the frame intent.
	Type MsgType
	// Flags carries type-specific bits.
	Flags uint8
	// Encoding is the encoding.Encoding ID used for Payload, so mixed
	// deployments can interoperate.
	Encoding uint8
	// Priority is the scheduler class the sender assigned; receivers use
	// it to queue handler work.
	Priority qos.Priority
	// Channel is the primitive instance name.
	Channel string
	// Seq is the message identifier (per sender, per subsystem).
	Seq uint64
	// Budget is the sender's remaining deadline for the work this frame
	// requests (zero = none declared). It travels on the wire only when
	// non-zero (FlagHasBudget), with microsecond granularity, so a
	// provider can reject an MTCall whose budget is already spent by the
	// time a handler would run (§4.3 admission control).
	Budget time.Duration
	// Payload is the encoded body; interpretation depends on Type.
	Payload []byte
}

// maxBudget is the largest budget encodable in the u32 microsecond wire
// word (~71 minutes); longer budgets saturate.
const maxBudget = time.Duration(^uint32(0)) * time.Microsecond

const (
	frameMagic   uint16 = 0x5541 // "UA"
	frameVersion uint8  = 1
)

// MaxChannelLen bounds channel names on the wire.
const MaxChannelLen = 255

// Errors.
var (
	// ErrBadFrame reports an undecodable frame.
	ErrBadFrame = errors.New("bad frame")
	// ErrVersion reports a version mismatch.
	ErrVersion = errors.New("protocol version mismatch")
)

// frameHeaderLen is the fixed header cost of every encoded frame: magic
// u16, version, type, flags, encoding, priority, the channel's u32 length
// prefix, and the u64 sequence number. Channel bytes and the optional
// budget word come on top.
const frameHeaderLen = 19

// FrameWireSize returns the exact number of bytes AppendFrame writes for f,
// so callers can size a buffer with no slack and no regrowth.
func FrameWireSize(f *Frame) int {
	n := frameHeaderLen + len(f.Channel) + len(f.Payload)
	if f.Budget > 0 {
		n += 4
	}
	return n
}

// AppendFrame serializes f onto the end of dst and returns the extended
// slice. It copies f.Payload into dst and retains nothing, so the caller
// may recycle both the frame and its payload immediately; dst is typically
// a pooled buffer (bufpool.Get) or an exact-size allocation
// (FrameWireSize). On error dst is returned unmodified.
func AppendFrame(dst []byte, f *Frame) ([]byte, error) {
	if !f.Type.Valid() {
		return dst, fmt.Errorf("protocol: type %d: %w", f.Type, ErrBadFrame)
	}
	if len(f.Channel) > MaxChannelLen {
		return dst, fmt.Errorf("protocol: channel %q too long: %w", f.Channel[:32]+"...", ErrBadFrame)
	}
	if f.Budget < 0 {
		return dst, fmt.Errorf("protocol: negative budget %v: %w", f.Budget, ErrBadFrame)
	}
	flags := f.Flags
	if f.Budget > 0 {
		flags |= FlagHasBudget
	} else {
		flags &^= FlagHasBudget
	}
	dst = binary.BigEndian.AppendUint16(dst, frameMagic)
	dst = append(dst, frameVersion, uint8(f.Type), flags, f.Encoding, uint8(f.Priority))
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(f.Channel)))
	dst = append(dst, f.Channel...)
	dst = binary.BigEndian.AppendUint64(dst, f.Seq)
	if f.Budget > 0 {
		budget := f.Budget
		if budget > maxBudget {
			budget = maxBudget
		}
		if budget < time.Microsecond {
			budget = time.Microsecond // flag implies a non-zero word
		}
		dst = binary.BigEndian.AppendUint32(dst, uint32(budget/time.Microsecond))
	}
	return append(dst, f.Payload...), nil
}

// EncodeFrame serializes f into exactly one exact-size allocation.
func EncodeFrame(f *Frame) ([]byte, error) {
	//wirepath:alloc exact-size, GC-owned encode for callers that retain the result
	out, err := AppendFrame(make([]byte, 0, FrameWireSize(f)), f)
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Channel-name interning for the decode path. Channels are primitive
// instance names — a small, stable vocabulary per deployment — so decoding
// them as fresh strings on every frame is pure garbage. The table is
// bounded: once full, unseen names fall back to a plain allocation rather
// than evicting hot entries, so a hostile sender spraying channel names
// costs allocations, not memory.
const internCap = 4096

var (
	internMu sync.RWMutex
	interned = make(map[string]string, 64)
)

// internChannel resolves the channel bytes to a shared string, allocating
// only the first time a name is seen (the map lookup on a []byte key
// compiles to a no-allocation probe).
func internChannel(b []byte) string {
	if len(b) == 0 {
		return ""
	}
	internMu.RLock()
	s, ok := interned[string(b)]
	internMu.RUnlock()
	if ok {
		return s
	}
	internMu.Lock()
	defer internMu.Unlock()
	if s, ok = interned[string(b)]; ok {
		return s
	}
	s = string(b)
	if len(interned) < internCap {
		interned[s] = s
	}
	return s
}

// DecodeFrameInto parses data into f, overwriting every field. The frame's
// Payload aliases data (callers that retain it must copy) and the Channel
// string is interned, so a steady-state decode allocates nothing. f is
// typically pooled (GetFrame/PutFrame); on error its contents are
// unspecified.
func DecodeFrameInto(f *Frame, data []byte) error {
	r := encoding.NewReader(data)
	if magic := r.Uint16(); magic != frameMagic {
		return fmt.Errorf("protocol: magic %#04x: %w", magic, ErrBadFrame)
	}
	if v := r.Uint8(); v != frameVersion {
		return fmt.Errorf("protocol: version %d, want %d: %w", v, frameVersion, ErrVersion)
	}
	f.Type = MsgType(r.Uint8())
	f.Flags = r.Uint8()
	f.Encoding = r.Uint8()
	f.Priority = qos.Priority(r.Uint8())
	f.Channel = internChannel(r.RawBytes())
	f.Seq = r.Uint64()
	f.Budget = 0
	if f.Flags&FlagHasBudget != 0 {
		f.Budget = time.Duration(r.Uint32()) * time.Microsecond
	}
	if err := r.Err(); err != nil {
		return fmt.Errorf("protocol: header: %w", err)
	}
	if !f.Type.Valid() {
		return fmt.Errorf("protocol: type %d: %w", f.Type, ErrBadFrame)
	}
	f.Payload = r.Raw(r.Remaining())
	return nil
}

// DecodeFrame parses data into a fresh frame. The returned frame's Payload
// aliases data; callers that retain it must copy.
func DecodeFrame(data []byte) (*Frame, error) {
	f := &Frame{}
	if err := DecodeFrameInto(f, data); err != nil {
		return nil, err
	}
	return f, nil
}

// framePool recycles Frame structs for the receive path, pairing with
// DecodeFrameInto so routing a datagram heap-allocates neither the frame
// nor its header fields.
var framePool = sync.Pool{New: func() any { return new(Frame) }}

// GetFrame returns a zeroed pooled frame. Release it with PutFrame once
// nothing retains the pointer — handlers that keep a frame past their call
// must copy the fields they need instead (the same retention rule as
// Payload).
func GetFrame() *Frame { return framePool.Get().(*Frame) }

// PutFrame zeroes f and returns it to the pool. Callers must guarantee no
// alias of f survives; when retention is uncertain, drop the frame on the
// floor and let the GC have it.
func PutFrame(f *Frame) {
	*f = Frame{}
	framePool.Put(f)
}
