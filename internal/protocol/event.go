package protocol

import (
	"encoding/binary"
	"fmt"
	"math/rand"

	"uavmw/internal/encoding"
)

// NewIncarnation draws a random non-zero publisher incarnation id. Both
// the event and variable engines stamp it onto the wire so subscribers can
// distinguish a restarted publisher (fresh sequence numbering) from
// reordered duplicates and reset their filters; zero is reserved for
// "no incarnation" (local bypass, snapshot replies).
func NewIncarnation() uint32 {
	for {
		if id := rand.Uint32(); id != 0 {
			return id
		}
	}
}

// Event payload layout (after the frame header):
//
//	u32 publisher incarnation id (random per Offer; lets subscribers
//	    distinguish a restarted publisher from reordered duplicates)
//	u64 per-topic occurrence sequence (1-based; 0 = unsequenced legacy)
//	raw encoded occurrence value
//
// The per-topic sequence is independent of Frame.Seq (the node-global
// message id used by ARQ and dedup): it numbers occurrences of one topic so
// subscribers can detect gaps in a multicast stream and count loss on the
// unicast path. MTEventNack payloads carry the list of missing per-topic
// sequences a subscriber wants retransmitted.

// eventHeaderLen is the fixed prefix before the encoded occurrence body.
const eventHeaderLen = 12

// MaxNackSeqs bounds one NACK frame; larger gaps are beyond any replay
// buffer and reported as unrecoverable loss instead.
const MaxNackSeqs = 256

// EncodeEventPayload prepends the publisher incarnation and per-topic
// sequence to an encoded occurrence body. buf, when non-nil and large
// enough, is reused.
func EncodeEventPayload(pubID uint32, topicSeq uint64, body []byte, buf []byte) []byte {
	need := eventHeaderLen + len(body)
	if cap(buf) < need {
		//wirepath:alloc growth fallback when the caller's reused buffer is too small
		buf = make([]byte, need)
	}
	buf = buf[:need]
	binary.BigEndian.PutUint32(buf, pubID)
	binary.BigEndian.PutUint64(buf[4:], topicSeq)
	copy(buf[eventHeaderLen:], body)
	return buf
}

// DecodeEventPayload splits an MTEvent payload into the publisher
// incarnation, the per-topic sequence and the encoded body. The body
// aliases payload; callers that retain it must copy.
func DecodeEventPayload(payload []byte) (pubID uint32, topicSeq uint64, body []byte, err error) {
	if len(payload) < eventHeaderLen {
		return 0, 0, nil, fmt.Errorf("protocol: event payload %d bytes: %w", len(payload), ErrBadFrame)
	}
	return binary.BigEndian.Uint32(payload), binary.BigEndian.Uint64(payload[4:]), payload[eventHeaderLen:], nil
}

// EncodeEventNack serializes the missing per-topic sequences of one topic.
func EncodeEventNack(missing []uint64) ([]byte, error) {
	if len(missing) == 0 || len(missing) > MaxNackSeqs {
		return nil, fmt.Errorf("protocol: nack with %d seqs: %w", len(missing), ErrBadFrame)
	}
	w := encoding.NewWriter(2 + 8*len(missing))
	w.Uint16(uint16(len(missing)))
	for _, seq := range missing {
		w.Uint64(seq)
	}
	return w.Bytes(), nil
}

// DecodeEventNack parses an MTEventNack payload.
func DecodeEventNack(payload []byte) ([]uint64, error) {
	r := encoding.NewReader(payload)
	n := int(r.Uint16())
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("protocol: nack header: %w", err)
	}
	if n == 0 || n > MaxNackSeqs || r.Remaining() != 8*n {
		return nil, fmt.Errorf("protocol: nack count %d for %d bytes: %w", n, r.Remaining(), ErrBadFrame)
	}
	out := make([]uint64, n)
	for i := range out {
		out[i] = r.Uint64()
	}
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("protocol: nack body: %w", err)
	}
	return out, nil
}
