package protocol

import (
	"errors"
	"sync"
	"time"

	"uavmw/internal/bufpool"
	"uavmw/internal/clock"
	"uavmw/internal/encoding"
	"uavmw/internal/metrics"
	"uavmw/internal/transport"
	"uavmw/internal/uerr"
)

// GBN wire-path error codes.
var (
	codeGBNClosed   = uerr.Register("gbn.closed_stream", uerr.CatResource)
	codeGBNTransmit = uerr.Register("gbn.transmit", uerr.CatSend)
)

// GoBackN is a TCP-like reliable ordered byte-message stream over an
// unreliable datagram transport: sliding window, cumulative acknowledgment,
// whole-window retransmission on timeout, strictly in-order delivery.
//
// It exists as the experimental baseline for the paper's §4.2 claim that
// the per-message ARQ scheme "is more efficient for event messages than the
// generic case provided by the TCP stack": under loss, GoBackN's in-order
// delivery head-of-line blocks every message behind a lost packet, while
// the ARQ engine delivers independent messages independently. Experiment E2
// measures exactly this difference.
type GoBackN struct {
	send    SendFunc
	peer    transport.NodeID
	window  int
	timeout time.Duration
	clk     clock.Clock

	mu       sync.Mutex
	sendBase uint64 // lowest unacked seq
	nextSeq  uint64
	buf      map[uint64][]byte // unacked messages
	pending  [][]byte          // waiting for window space
	timer    clock.Timer
	closed   bool

	recvNext uint64 // next in-order seq expected
	recvBuf  map[uint64][]byte
	deliver  func(msg []byte)
	// deliverMu serializes handleData end to end so that two packets
	// processed concurrently cannot interleave their in-order delivery
	// batches (the stream guarantee would silently break).
	deliverMu sync.Mutex

	reg   *metrics.Registry
	stats GBNStats
}

// GBNStats counts stream activity.
type GBNStats struct {
	Sent        uint64
	Retransmits uint64
	Delivered   uint64
	OutOfOrder  uint64 // packets buffered awaiting earlier ones
}

// gbn wire format rides in MTEvent-typed frames? No — it has its own
// framing to stay independent of the middleware frame space:
//
//	u8  kind (0 data, 1 ack)
//	u64 seq (data: message seq; ack: cumulative next-expected)
//	raw payload (data only)
const (
	gbnData uint8 = 0
	gbnAck  uint8 = 1
)

// ErrGBNClosed reports use after Close.
var ErrGBNClosed = errors.New("gbn stream closed")

// DefaultGBNWindow is the sender window size in messages.
const DefaultGBNWindow = 32

// GBNOption customizes a stream.
type GBNOption func(*GoBackN)

// WithGBNClock sets the time source for the retransmission timer
// (default: the wall clock).
func WithGBNClock(c clock.Clock) GBNOption {
	return func(g *GoBackN) {
		if c != nil {
			g.clk = c
		}
	}
}

// WithGBNMetrics lands the stream's typed-error counts in the given
// registry (default: a private one).
func WithGBNMetrics(reg *metrics.Registry) GBNOption {
	return func(g *GoBackN) {
		if reg != nil {
			g.reg = reg
		}
	}
}

// NewGoBackN builds one direction of a stream to peer. deliver receives
// messages strictly in send order.
func NewGoBackN(peer transport.NodeID, send SendFunc, deliver func([]byte), timeout time.Duration, window int, opts ...GBNOption) *GoBackN {
	if timeout <= 0 {
		timeout = DefaultARQTimeout
	}
	if window <= 0 {
		window = DefaultGBNWindow
	}
	g := &GoBackN{
		send:    send,
		peer:    peer,
		window:  window,
		timeout: timeout,
		clk:     clock.Real{},
		buf:     make(map[uint64][]byte),
		recvBuf: make(map[uint64][]byte),
		deliver: deliver,
	}
	for _, opt := range opts {
		opt(g)
	}
	if g.reg == nil {
		g.reg = metrics.NewRegistry()
	}
	return g
}

// Stats snapshots the counters.
func (g *GoBackN) Stats() GBNStats {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.stats
}

// Send queues one message for reliable in-order delivery.
func (g *GoBackN) Send(msg []byte) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.closed {
		return uerr.Wrap(g.reg, codeGBNClosed, ErrGBNClosed, "send refused")
	}
	if g.nextSeq-g.sendBase >= uint64(g.window) {
		g.pending = append(g.pending, bufpool.Copy(msg))
		return nil
	}
	g.transmitLocked(msg)
	return nil
}

// transmitLocked assigns a seq and sends. Caller holds g.mu.
func (g *GoBackN) transmitLocked(msg []byte) {
	seq := g.nextSeq
	g.nextSeq++
	cp := bufpool.Copy(msg)
	g.buf[seq] = cp
	g.stats.Sent++
	if g.timer == nil {
		g.timer = g.clk.AfterFunc(g.timeout, g.onTimeout)
	}
	g.rawSend(gbnData, seq, cp)
}

func (g *GoBackN) rawSend(kind uint8, seq uint64, payload []byte) {
	w := encoding.NewWriter(9 + len(payload))
	w.Uint8(kind)
	w.Uint64(seq)
	w.Raw(payload)
	// The window timer is the recovery path for a lost transmission, but
	// the failure is counted, not discarded.
	uerr.Note(g.reg, codeGBNTransmit, g.send(g.peer, w.Bytes()), "stream transmit")
}

// onTimeout retransmits the whole unacked window (classic Go-Back-N).
func (g *GoBackN) onTimeout() {
	g.mu.Lock()
	if g.closed || len(g.buf) == 0 {
		g.timer = nil
		g.mu.Unlock()
		return
	}
	var frames []struct {
		seq uint64
		msg []byte
	}
	for seq := g.sendBase; seq < g.nextSeq; seq++ {
		if msg, ok := g.buf[seq]; ok {
			frames = append(frames, struct {
				seq uint64
				msg []byte
			}{seq, msg})
		}
	}
	g.stats.Retransmits += uint64(len(frames))
	g.timer = g.clk.AfterFunc(g.timeout, g.onTimeout)
	g.mu.Unlock()
	for _, f := range frames {
		g.rawSend(gbnData, f.seq, f.msg)
	}
}

// HandlePacket consumes one raw packet from the peer (both data and acks).
func (g *GoBackN) HandlePacket(payload []byte) {
	r := encoding.NewReader(payload)
	kind := r.Uint8()
	seq := r.Uint64()
	if r.Err() != nil {
		return
	}
	switch kind {
	case gbnAck:
		g.handleAck(seq)
	case gbnData:
		g.handleData(seq, r.Raw(r.Remaining()))
	}
}

func (g *GoBackN) handleAck(nextExpected uint64) {
	g.mu.Lock()
	if nextExpected <= g.sendBase {
		g.mu.Unlock()
		return // stale cumulative ack
	}
	for seq := g.sendBase; seq < nextExpected; seq++ {
		delete(g.buf, seq)
	}
	g.sendBase = nextExpected
	// Window slid: admit pending messages.
	var admit [][]byte
	for len(g.pending) > 0 && g.nextSeq-g.sendBase < uint64(g.window) {
		admit = append(admit, g.pending[0])
		g.pending = g.pending[1:]
		g.transmitLocked(admit[len(admit)-1])
	}
	if len(g.buf) == 0 && g.timer != nil {
		g.timer.Stop()
		g.timer = nil
	}
	g.mu.Unlock()
}

func (g *GoBackN) handleData(seq uint64, data []byte) {
	g.deliverMu.Lock()
	defer g.deliverMu.Unlock()
	g.mu.Lock()
	var toDeliver [][]byte
	switch {
	case seq < g.recvNext:
		// Duplicate of already-delivered data; re-ack.
	case seq == g.recvNext:
		toDeliver = append(toDeliver, bufpool.Copy(data))
		g.recvNext++
		// Drain any buffered successors.
		for {
			next, ok := g.recvBuf[g.recvNext]
			if !ok {
				break
			}
			delete(g.recvBuf, g.recvNext)
			toDeliver = append(toDeliver, next)
			g.recvNext++
		}
	default:
		// Out of order: buffer (receiver-side buffering is kinder than
		// the classic drop-everything GBN and still preserves the
		// in-order delivery semantics being compared).
		if _, dup := g.recvBuf[seq]; !dup && seq-g.recvNext < uint64(g.window)*4 {
			g.recvBuf[seq] = bufpool.Copy(data)
			g.stats.OutOfOrder++
		}
	}
	ackTo := g.recvNext
	g.stats.Delivered += uint64(len(toDeliver))
	deliver := g.deliver
	g.mu.Unlock()

	g.rawSend(gbnAck, ackTo, nil)
	if deliver != nil {
		for _, msg := range toDeliver {
			deliver(msg)
		}
	}
}

// Unacked reports messages awaiting acknowledgment plus queued ones.
func (g *GoBackN) Unacked() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return len(g.buf) + len(g.pending)
}

// Close stops the retransmission timer; undelivered messages are dropped.
func (g *GoBackN) Close() {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.closed {
		return
	}
	g.closed = true
	if g.timer != nil {
		g.timer.Stop()
		g.timer = nil
	}
}
