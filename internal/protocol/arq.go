package protocol

import (
	"errors"
	"sync"
	"time"

	"uavmw/internal/clock"
	"uavmw/internal/metrics"
	"uavmw/internal/transport"
	"uavmw/internal/uerr"
)

// ARQ wire-path error codes. Every failure the engine reports (or used to
// swallow — retransmission sends) is typed and counted in the node
// registry's "arq.errors" family.
var (
	codeARQClosed  = uerr.Register("arq.closed_engine", uerr.CatResource)
	codeARQDupSeq  = uerr.Register("arq.duplicate_seq", uerr.CatProtocol)
	codeARQAckWait = uerr.Register("arq.ack_wait", uerr.CatTimeout)
	codeARQFirstTx = uerr.Register("arq.first_transmit", uerr.CatSend)
	codeARQRetryTx = uerr.Register("arq.retransmit", uerr.CatSend)
)

// ARQ is the application-level acknowledgment/retransmission engine the
// paper maps events onto when they run over UDP: "a mechanism to
// acknowledge and resend lost packets ... more efficient for event messages
// than the generic case provided by the TCP stack" (§4.2).
//
// The sender side retransmits each message with exponential backoff until
// the peer acknowledges or the retry budget is exhausted; the receiver side
// suppresses duplicates (retransmissions of messages whose ACK was lost).
// ARQ is message-oriented, not stream-oriented: each message is
// acknowledged independently, so one lost packet never head-of-line blocks
// the messages behind it — the efficiency argument experiment E2 measures.
type ARQ struct {
	send       SendFunc
	clk        clock.Clock
	timeout    time.Duration
	maxRetries int
	backoff    float64

	mu      sync.Mutex
	pending map[arqKey]*arqPending
	closed  bool

	reg   *metrics.Registry
	stats arqCounters
}

// SendFunc transmits a raw frame to a peer; the ARQ engine owns retries.
type SendFunc func(to transport.NodeID, frame []byte) error

// ResultFunc reports the final outcome of a reliable send: nil on ACK, or
// ErrTimeout / transport errors after the retry budget is spent.
type ResultFunc func(err error)

type arqKey struct {
	to  transport.NodeID
	seq uint64
}

type arqPending struct {
	frame   []byte
	timer   clock.Timer
	retries int
	result  ResultFunc
	done    bool
	// timeout / maxRetries are this message's overrides (zero = engine
	// default): a critical alarm on a 40ms-latency radio modem needs a
	// longer fuse than a chunk ack on local WiFi, and QoS policies carry
	// that per primitive (qos.EventQoS.AckTimeout / MaxRetries).
	timeout    time.Duration
	maxRetries int
}

// SendTuning carries per-message ARQ overrides; zero fields take the
// engine defaults.
type SendTuning struct {
	// Timeout is the initial retransmission timeout for this message.
	Timeout time.Duration
	// MaxRetries is this message's retransmission budget.
	MaxRetries int
}

// ARQStats is a snapshot of engine activity for the E2 experiment.
type ARQStats struct {
	Sent        uint64 // first transmissions
	Retransmits uint64
	Acked       uint64
	Failed      uint64
}

// arqCounters holds the engine's pre-resolved registry handles ("arq"
// component); increments stay lock-free atomics and ARQStats is a view
// over the same series MetricsSnapshot exports.
type arqCounters struct {
	sent        *metrics.Counter
	retransmits *metrics.Counter
	acked       *metrics.Counter
	failed      *metrics.Counter
}

func newARQCounters(reg *metrics.Registry) arqCounters {
	return arqCounters{
		sent:        reg.Counter("arq", "sent"),
		retransmits: reg.Counter("arq", "retransmits"),
		acked:       reg.Counter("arq", "acked"),
		failed:      reg.Counter("arq", "failed"),
	}
}

func (c *arqCounters) snapshot() ARQStats {
	return ARQStats{
		Sent:        c.sent.Value(),
		Retransmits: c.retransmits.Value(),
		Acked:       c.acked.Value(),
		Failed:      c.failed.Value(),
	}
}

// Errors.
var (
	// ErrTimeout reports a message that exhausted its retries unacked.
	ErrTimeout = errors.New("arq timeout")
	// ErrARQClosed reports use after Close.
	ErrARQClosed = errors.New("arq closed")
)

// Defaults applied when options are zero.
const (
	DefaultARQTimeout = 20 * time.Millisecond
	DefaultARQRetries = 8
	defaultARQBackoff = 1.6
)

// ARQOption customizes the engine.
type ARQOption func(*ARQ)

// WithTimeout sets the initial retransmission timeout.
func WithTimeout(d time.Duration) ARQOption {
	return func(a *ARQ) {
		if d > 0 {
			a.timeout = d
		}
	}
}

// WithMaxRetries sets the retransmission budget.
func WithMaxRetries(n int) ARQOption {
	return func(a *ARQ) {
		if n > 0 {
			a.maxRetries = n
		}
	}
}

// WithClock sets the time source for retransmission timers (default:
// the wall clock).
func WithClock(c clock.Clock) ARQOption {
	return func(a *ARQ) {
		if c != nil {
			a.clk = c
		}
	}
}

// WithBackoff sets the timeout multiplier between attempts (>= 1).
func WithBackoff(f float64) ARQOption {
	return func(a *ARQ) {
		if f >= 1 {
			a.backoff = f
		}
	}
}

// WithMetrics lands the engine's counters and typed-error families in the
// given registry — the container passes the node registry so ARQ activity
// shows up in MetricsSnapshot. Without it the engine keeps a private
// registry and bare uses work unchanged.
func WithMetrics(reg *metrics.Registry) ARQOption {
	return func(a *ARQ) {
		if reg != nil {
			a.reg = reg
		}
	}
}

// NewARQ builds an engine that transmits via send.
func NewARQ(send SendFunc, opts ...ARQOption) *ARQ {
	a := &ARQ{
		send:       send,
		clk:        clock.Real{},
		timeout:    DefaultARQTimeout,
		maxRetries: DefaultARQRetries,
		backoff:    defaultARQBackoff,
		pending:    make(map[arqKey]*arqPending),
	}
	for _, opt := range opts {
		opt(a)
	}
	if a.reg == nil {
		a.reg = metrics.NewRegistry()
	}
	a.stats = newARQCounters(a.reg)
	return a
}

// Stats snapshots the engine counters.
func (a *ARQ) Stats() ARQStats { return a.stats.snapshot() }

// Send transmits frame to peer reliably with the engine-default tuning.
// seq must be unique per (peer, message); result is invoked exactly once
// from a timer or Ack goroutine.
func (a *ARQ) Send(to transport.NodeID, seq uint64, frame []byte, result ResultFunc) error {
	return a.SendTuned(to, seq, frame, SendTuning{}, result)
}

// SendTuned is Send with per-message timeout / retry overrides.
func (a *ARQ) SendTuned(to transport.NodeID, seq uint64, frame []byte, tune SendTuning, result ResultFunc) error {
	key := arqKey{to: to, seq: seq}
	p := &arqPending{frame: frame, result: result, timeout: tune.Timeout, maxRetries: tune.MaxRetries}

	a.mu.Lock()
	if a.closed {
		a.mu.Unlock()
		return uerr.Wrap(a.reg, codeARQClosed, ErrARQClosed, "send refused")
	}
	if _, dup := a.pending[key]; dup {
		a.mu.Unlock()
		return uerr.Newf(a.reg, codeARQDupSeq, "in-flight seq %d to %q", seq, to)
	}
	a.pending[key] = p
	p.timer = a.clk.AfterFunc(a.timeoutFor(p), func() { a.retransmit(key, 1) })
	a.mu.Unlock()

	a.stats.sent.Inc()

	if err := a.send(to, frame); err != nil {
		// First transmission failed outright (unknown node, closed
		// transport): fail fast rather than burning the retry budget.
		a.finish(key, uerr.Wrap(a.reg, codeARQFirstTx, err, "first transmission"))
		return nil // outcome reported via result
	}
	return nil
}

// retransmit fires on timer expiry for attempt n.
func (a *ARQ) retransmit(key arqKey, attempt int) {
	a.mu.Lock()
	p, ok := a.pending[key]
	if !ok || p.done || a.closed {
		a.mu.Unlock()
		return
	}
	if attempt > a.retriesFor(p) {
		a.mu.Unlock()
		a.stats.failed.Inc()
		a.finish(key, uerr.Wrapf(a.reg, codeARQAckWait, ErrTimeout,
			"seq %d to %q after %d attempts", key.seq, key.to, attempt))
		return
	}
	frame := p.frame
	delay := a.timeoutFor(p)
	for i := 0; i < attempt; i++ {
		delay = time.Duration(float64(delay) * a.backoff)
	}
	p.retries++
	p.timer = a.clk.AfterFunc(delay, func() { a.retransmit(key, attempt+1) })
	a.mu.Unlock()

	a.stats.retransmits.Inc()
	// A transient failure retries on the next timer, but it is counted,
	// not discarded: a bearer blackout shows up as arq.retransmit send
	// errors long before retry budgets start expiring.
	uerr.Note(a.reg, codeARQRetryTx, a.send(key.to, frame), "retransmission")
}

// timeoutFor resolves one message's effective initial timeout.
func (a *ARQ) timeoutFor(p *arqPending) time.Duration {
	if p.timeout > 0 {
		return p.timeout
	}
	return a.timeout
}

// retriesFor resolves one message's effective retry budget.
func (a *ARQ) retriesFor(p *arqPending) int {
	if p.maxRetries > 0 {
		return p.maxRetries
	}
	return a.maxRetries
}

// Ack completes the message (peer, seq); safe to call for unknown keys
// (late or duplicate ACKs).
func (a *ARQ) Ack(from transport.NodeID, seq uint64) {
	key := arqKey{to: from, seq: seq}
	a.stats.acked.Inc()
	a.finish(key, nil)
}

// finish resolves a pending entry exactly once.
func (a *ARQ) finish(key arqKey, err error) {
	a.mu.Lock()
	p, ok := a.pending[key]
	if !ok || p.done {
		a.mu.Unlock()
		return
	}
	p.done = true
	delete(a.pending, key)
	if p.timer != nil {
		p.timer.Stop()
	}
	result := p.result
	a.mu.Unlock()
	if result != nil {
		result(err)
	}
}

// Pending reports the number of unacknowledged messages.
func (a *ARQ) Pending() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.pending)
}

// Close fails every pending message with ErrARQClosed and stops timers.
func (a *ARQ) Close() {
	a.mu.Lock()
	if a.closed {
		a.mu.Unlock()
		return
	}
	a.closed = true
	keys := make([]arqKey, 0, len(a.pending))
	for key := range a.pending {
		keys = append(keys, key)
	}
	a.mu.Unlock()
	for _, key := range keys {
		a.finish(key, uerr.Wrap(a.reg, codeARQClosed, ErrARQClosed, "engine closing"))
	}
}
