package protocol

import (
	"errors"
	"testing"

	"uavmw/internal/qos"
)

func encodeTestFrame(t *testing.T, f *Frame) []byte {
	t.Helper()
	raw, err := EncodeFrame(f)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	return raw
}

func TestBatchRoundTrip(t *testing.T) {
	frames := [][]byte{
		encodeTestFrame(t, &Frame{Type: MTSample, Priority: qos.PriorityNormal,
			Channel: "gps.position", Seq: 1, Payload: []byte("alpha")}),
		encodeTestFrame(t, &Frame{Type: MTEvent, Priority: qos.PriorityHigh,
			Channel: "alarm", Seq: 2, Payload: []byte("beta")}),
		encodeTestFrame(t, &Frame{Type: MTHeartbeat, Priority: qos.PriorityNormal, Seq: 3}),
	}
	raw, err := EncodeBatch(frames, qos.PriorityHigh)
	if err != nil {
		t.Fatalf("EncodeBatch: %v", err)
	}
	outer, err := DecodeFrame(raw)
	if err != nil {
		t.Fatalf("DecodeFrame: %v", err)
	}
	if outer.Type != MTBatch {
		t.Fatalf("outer type = %v, want batch", outer.Type)
	}
	if outer.Priority != qos.PriorityHigh {
		t.Fatalf("outer priority = %v, want high", outer.Priority)
	}
	subs, err := DecodeBatch(outer.Payload)
	if err != nil {
		t.Fatalf("DecodeBatch: %v", err)
	}
	if len(subs) != len(frames) {
		t.Fatalf("decoded %d frames, want %d", len(subs), len(frames))
	}
	wantSeq := []uint64{1, 2, 3}
	wantType := []MsgType{MTSample, MTEvent, MTHeartbeat}
	for i, sub := range subs {
		f, err := DecodeFrame(sub)
		if err != nil {
			t.Fatalf("inner %d: %v", i, err)
		}
		if f.Seq != wantSeq[i] || f.Type != wantType[i] {
			t.Fatalf("inner %d = %v seq %d, want %v seq %d", i, f.Type, f.Seq, wantType[i], wantSeq[i])
		}
	}
}

func TestBatchOverheadAccountsForWire(t *testing.T) {
	frames := [][]byte{
		encodeTestFrame(t, &Frame{Type: MTSample, Channel: "a", Seq: 1, Payload: make([]byte, 100)}),
		encodeTestFrame(t, &Frame{Type: MTSample, Channel: "b", Seq: 2, Payload: make([]byte, 100)}),
	}
	raw, err := EncodeBatch(frames, qos.PriorityNormal)
	if err != nil {
		t.Fatalf("EncodeBatch: %v", err)
	}
	inner := len(frames[0]) + len(frames[1])
	if got, want := len(raw), inner+BatchOverhead(len(frames)); got != want {
		t.Fatalf("batch datagram %d bytes, want exactly %d (inner %d + overhead)", got, want, inner)
	}
}

func TestBatchRejectsEmptyAndTruncated(t *testing.T) {
	if _, err := EncodeBatch(nil, qos.PriorityNormal); err == nil {
		t.Fatal("EncodeBatch(nil) succeeded")
	}
	if _, err := DecodeBatch(nil); err == nil {
		t.Fatal("DecodeBatch(nil) succeeded")
	}
	frame := encodeTestFrame(t, &Frame{Type: MTSample, Channel: "a", Seq: 1})
	raw, err := EncodeBatch([][]byte{frame}, qos.PriorityNormal)
	if err != nil {
		t.Fatal(err)
	}
	outer, err := DecodeFrame(raw)
	if err != nil {
		t.Fatal(err)
	}
	// Truncate the payload mid-entry: decode must fail, not panic.
	if _, err := DecodeBatch(outer.Payload[:len(outer.Payload)-3]); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("truncated batch: err = %v, want ErrBadFrame", err)
	}
}

func TestPeekPriority(t *testing.T) {
	for _, p := range qos.Levels() {
		raw := encodeTestFrame(t, &Frame{Type: MTSample, Priority: p, Channel: "x", Seq: 9})
		if got := PeekPriority(raw); got != p {
			t.Fatalf("PeekPriority = %v, want %v", got, p)
		}
	}
	if got := PeekPriority([]byte{1, 2, 3}); got != qos.PriorityNormal {
		t.Fatalf("short input: %v, want normal", got)
	}
	if got := PeekPriority(make([]byte, 32)); got != qos.PriorityNormal {
		t.Fatalf("bad magic: %v, want normal", got)
	}
}
