package protocol

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"uavmw/internal/transport"
)

// lossySend wraps a send function, dropping the first n calls per key.
type lossySend struct {
	mu      sync.Mutex
	dropped map[uint64]int
	drops   int
	sent    [][]byte
	onSend  func(seq uint64, frame []byte)
}

func (l *lossySend) send(drops int) SendFunc {
	l.dropped = make(map[uint64]int)
	l.drops = drops
	return func(to transport.NodeID, frame []byte) error {
		l.mu.Lock()
		defer l.mu.Unlock()
		f, err := DecodeFrame(frame)
		if err != nil {
			return err
		}
		if l.dropped[f.Seq] < l.drops {
			l.dropped[f.Seq]++
			return nil // dropped silently, like UDP
		}
		l.sent = append(l.sent, frame)
		if l.onSend != nil {
			l.onSend(f.Seq, frame)
		}
		return nil
	}
}

func mustFrame(t *testing.T, seq uint64) []byte {
	t.Helper()
	raw, err := EncodeFrame(&Frame{Type: MTEvent, Channel: "c", Seq: seq})
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

func TestARQImmediateAck(t *testing.T) {
	var arq *ARQ
	ls := &lossySend{}
	ls.onSend = func(seq uint64, _ []byte) { go arq.Ack("peer", seq) }
	arq = NewARQ(ls.send(0), WithTimeout(5*time.Millisecond))
	defer arq.Close()

	done := make(chan error, 1)
	if err := arq.Send("peer", 1, mustFrame(t, 1), func(err error) { done <- err }); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Errorf("result: %v", err)
		}
	case <-time.After(time.Second):
		t.Fatal("no result")
	}
	if arq.Pending() != 0 {
		t.Errorf("Pending = %d", arq.Pending())
	}
	st := arq.Stats()
	if st.Sent != 1 || st.Acked != 1 || st.Retransmits != 0 {
		t.Errorf("stats = %+v", st)
	}
}

func TestARQRetransmitsUntilAck(t *testing.T) {
	var arq *ARQ
	ls := &lossySend{}
	ls.onSend = func(seq uint64, _ []byte) { go arq.Ack("peer", seq) }
	// Drop the first 3 transmissions of every message.
	arq = NewARQ(ls.send(3), WithTimeout(2*time.Millisecond), WithMaxRetries(10))
	defer arq.Close()

	done := make(chan error, 1)
	if err := arq.Send("peer", 7, mustFrame(t, 7), func(err error) { done <- err }); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Errorf("result after retransmits: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("no result")
	}
	st := arq.Stats()
	if st.Retransmits < 3 {
		t.Errorf("retransmits = %d, want >= 3", st.Retransmits)
	}
}

func TestARQTimeoutAfterBudget(t *testing.T) {
	ls := &lossySend{}
	arq := NewARQ(ls.send(1000), WithTimeout(time.Millisecond), WithMaxRetries(3), WithBackoff(1.0))
	defer arq.Close()

	done := make(chan error, 1)
	if err := arq.Send("peer", 9, mustFrame(t, 9), func(err error) { done <- err }); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if !errors.Is(err, ErrTimeout) {
			t.Errorf("want ErrTimeout, got %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("no result")
	}
	if arq.Stats().Failed != 1 {
		t.Errorf("Failed = %d", arq.Stats().Failed)
	}
}

func TestARQFirstSendErrorFailsFast(t *testing.T) {
	sendErr := errors.New("no route")
	arq := NewARQ(func(transport.NodeID, []byte) error { return sendErr })
	defer arq.Close()

	done := make(chan error, 1)
	if err := arq.Send("peer", 1, mustFrame(t, 1), func(err error) { done <- err }); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if !errors.Is(err, sendErr) {
			t.Errorf("want wrapped send error, got %v", err)
		}
	case <-time.After(time.Second):
		t.Fatal("no result")
	}
}

func TestARQDuplicateInFlight(t *testing.T) {
	arq := NewARQ(func(transport.NodeID, []byte) error { return nil },
		WithTimeout(time.Hour)) // never fires
	defer arq.Close()
	if err := arq.Send("p", 5, mustFrame(t, 5), nil); err != nil {
		t.Fatal(err)
	}
	if err := arq.Send("p", 5, mustFrame(t, 5), nil); err == nil {
		t.Error("duplicate in-flight seq must be rejected")
	}
	// Same seq to a different peer is fine.
	if err := arq.Send("q", 5, mustFrame(t, 5), nil); err != nil {
		t.Errorf("distinct peer, same seq: %v", err)
	}
}

func TestARQLateAckIgnored(t *testing.T) {
	arq := NewARQ(func(transport.NodeID, []byte) error { return nil })
	defer arq.Close()
	arq.Ack("peer", 42) // nothing pending; must not panic
	if arq.Pending() != 0 {
		t.Error("phantom pending")
	}
}

func TestARQCloseFailsPending(t *testing.T) {
	arq := NewARQ(func(transport.NodeID, []byte) error { return nil },
		WithTimeout(time.Hour))
	done := make(chan error, 1)
	if err := arq.Send("p", 1, mustFrame(t, 1), func(err error) { done <- err }); err != nil {
		t.Fatal(err)
	}
	arq.Close()
	select {
	case err := <-done:
		if !errors.Is(err, ErrARQClosed) {
			t.Errorf("want ErrARQClosed, got %v", err)
		}
	case <-time.After(time.Second):
		t.Fatal("pending not failed on Close")
	}
	if err := arq.Send("p", 2, mustFrame(t, 2), nil); !errors.Is(err, ErrARQClosed) {
		t.Errorf("send after close: %v", err)
	}
	arq.Close() // idempotent
}

func TestARQManyConcurrent(t *testing.T) {
	var arq *ARQ
	ls := &lossySend{}
	ls.onSend = func(seq uint64, _ []byte) { go arq.Ack("peer", seq) }
	arq = NewARQ(ls.send(1), WithTimeout(2*time.Millisecond), WithMaxRetries(10))
	defer arq.Close()

	const n = 200
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			inner := make(chan error, 1)
			if err := arq.Send("peer", uint64(i), mustFrame(t, uint64(i)), func(err error) { inner <- err }); err != nil {
				errs <- err
				return
			}
			errs <- <-inner
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatalf("concurrent send failed: %v", err)
		}
	}
}

func TestDedup(t *testing.T) {
	d := NewDedup(4)
	if d.Seen("a", 1) {
		t.Error("fresh seq marked duplicate")
	}
	if !d.Seen("a", 1) {
		t.Error("repeat not detected")
	}
	// Per-sender isolation.
	if d.Seen("b", 1) {
		t.Error("seq of different sender marked duplicate")
	}
	// Window eviction: after 4 newer seqs, 1 is forgotten.
	for _, s := range []uint64{2, 3, 4, 5} {
		d.Seen("a", s)
	}
	if d.Seen("a", 1) {
		t.Error("evicted seq still remembered")
	}
	if d.Senders() != 2 {
		t.Errorf("Senders = %d", d.Senders())
	}
	d.Forget("a")
	if d.Senders() != 1 {
		t.Error("Forget failed")
	}
	if d.Seen("a", 5) {
		t.Error("forgotten sender state persisted")
	}
}

func TestDedupDefaultWindow(t *testing.T) {
	d := NewDedup(0)
	for i := uint64(0); i < DefaultDedupWindow; i++ {
		if d.Seen("s", i) {
			t.Fatalf("seq %d falsely duplicate", i)
		}
	}
	if !d.Seen("s", 0) {
		t.Error("seq 0 should still be in the default window")
	}
}

// TestARQSendTunedOverrides pins per-message tuning: a SendTuned timeout
// longer than the engine default suppresses retransmissions the default
// would have fired, and a per-message retry budget overrides the engine's.
func TestARQSendTunedOverrides(t *testing.T) {
	// Engine default 5ms; the tuned message waits 500ms before its first
	// retransmission, so within ~100ms nothing must have been re-sent.
	var sends atomic.Int32
	arq := NewARQ(func(transport.NodeID, []byte) error {
		sends.Add(1)
		return nil
	}, WithTimeout(5*time.Millisecond))
	defer arq.Close()
	if err := arq.SendTuned("peer", 1, mustFrame(t, 1), SendTuning{Timeout: 500 * time.Millisecond}, nil); err != nil {
		t.Fatal(err)
	}
	time.Sleep(100 * time.Millisecond)
	if n := sends.Load(); n != 1 {
		t.Errorf("tuned message transmitted %d times within the long fuse, want 1", n)
	}
	arq.Ack("peer", 1)

	// A per-message retry budget of 1 fails after exactly one retransmit
	// even though the engine default is 8.
	sends.Store(0)
	done := make(chan error, 1)
	if err := arq.SendTuned("peer", 2, mustFrame(t, 2), SendTuning{Timeout: time.Millisecond, MaxRetries: 1},
		func(err error) { done <- err }); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if !errors.Is(err, ErrTimeout) {
			t.Errorf("tuned send err = %v, want ErrTimeout", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("tuned send never concluded")
	}
	if n := sends.Load(); n != 2 {
		t.Errorf("transmitted %d times, want 2 (initial + 1 retry)", n)
	}
}
