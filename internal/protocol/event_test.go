package protocol

import (
	"bytes"
	"errors"
	"testing"
)

func TestEventPayloadRoundTrip(t *testing.T) {
	body := []byte("occurrence-body")
	payload := EncodeEventPayload(0xCAFE, 42, body, nil)
	pubID, seq, got, err := DecodeEventPayload(payload)
	if err != nil {
		t.Fatal(err)
	}
	if pubID != 0xCAFE || seq != 42 || !bytes.Equal(got, body) {
		t.Fatalf("decoded (%#x, %d, %q)", pubID, seq, got)
	}

	// Empty body (payload-less event) still carries the header.
	payload = EncodeEventPayload(1, 7, nil, nil)
	if _, seq, got, err = DecodeEventPayload(payload); err != nil || seq != 7 || len(got) != 0 {
		t.Fatalf("empty body: seq=%d len=%d err=%v", seq, len(got), err)
	}
}

func TestEventPayloadBufferReuse(t *testing.T) {
	buf := make([]byte, 0, 64)
	payload := EncodeEventPayload(9, 1, []byte("abc"), buf)
	if &payload[0] != &buf[:1][0] {
		t.Error("large-enough buffer was not reused")
	}
	// Too-small buffer: a fresh one is allocated, content still correct.
	payload = EncodeEventPayload(9, 2, make([]byte, 100), make([]byte, 0, 8))
	if _, seq, body, err := DecodeEventPayload(payload); err != nil || seq != 2 || len(body) != 100 {
		t.Fatalf("grown buffer: seq=%d len=%d err=%v", seq, len(body), err)
	}
}

func TestEventPayloadTooShort(t *testing.T) {
	if _, _, _, err := DecodeEventPayload([]byte{1, 2, 3}); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("short payload: %v", err)
	}
}

func TestEventNackRoundTrip(t *testing.T) {
	missing := []uint64{3, 5, 6, 900}
	payload, err := EncodeEventNack(missing)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeEventNack(payload)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(missing) {
		t.Fatalf("len = %d", len(got))
	}
	for i := range missing {
		if got[i] != missing[i] {
			t.Fatalf("seq[%d] = %d, want %d", i, got[i], missing[i])
		}
	}
}

func TestEventNackBounds(t *testing.T) {
	if _, err := EncodeEventNack(nil); err == nil {
		t.Error("empty nack accepted")
	}
	if _, err := EncodeEventNack(make([]uint64, MaxNackSeqs+1)); err == nil {
		t.Error("oversized nack accepted")
	}
	if _, err := DecodeEventNack([]byte{0, 2, 0}); err == nil {
		t.Error("truncated nack accepted")
	}
	// Count lies about the body length.
	good, _ := EncodeEventNack([]uint64{1, 2})
	if _, err := DecodeEventNack(good[:len(good)-8]); err == nil {
		t.Error("short body accepted")
	}
}
