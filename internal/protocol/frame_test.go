package protocol

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"uavmw/internal/qos"
)

func TestFrameRoundTrip(t *testing.T) {
	f := &Frame{
		Type:     MTEvent,
		Flags:    0x3,
		Encoding: 1,
		Priority: qos.PriorityHigh,
		Channel:  "mission.photo",
		Seq:      987654321,
		Payload:  []byte("payload-bytes"),
	}
	raw, err := EncodeFrame(f)
	if err != nil {
		t.Fatalf("EncodeFrame: %v", err)
	}
	got, err := DecodeFrame(raw)
	if err != nil {
		t.Fatalf("DecodeFrame: %v", err)
	}
	if got.Type != f.Type || got.Flags != f.Flags || got.Encoding != f.Encoding ||
		got.Priority != f.Priority || got.Channel != f.Channel || got.Seq != f.Seq {
		t.Errorf("header mismatch: %+v vs %+v", got, f)
	}
	if !bytes.Equal(got.Payload, f.Payload) {
		t.Errorf("payload mismatch: %q", got.Payload)
	}
}

func TestFrameAllTypesRoundTrip(t *testing.T) {
	for mt := MTAnnounce; mt < mtMax; mt++ {
		raw, err := EncodeFrame(&Frame{Type: mt, Channel: "c", Seq: uint64(mt)})
		if err != nil {
			t.Fatalf("encode %v: %v", mt, err)
		}
		got, err := DecodeFrame(raw)
		if err != nil {
			t.Fatalf("decode %v: %v", mt, err)
		}
		if got.Type != mt {
			t.Errorf("type %v decoded as %v", mt, got.Type)
		}
	}
}

func TestFrameEmptyPayload(t *testing.T) {
	raw, err := EncodeFrame(&Frame{Type: MTHeartbeat})
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeFrame(raw)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Payload) != 0 || got.Channel != "" {
		t.Errorf("got %+v", got)
	}
}

func TestFrameEncodeErrors(t *testing.T) {
	if _, err := EncodeFrame(&Frame{Type: 0}); !errors.Is(err, ErrBadFrame) {
		t.Errorf("zero type: %v", err)
	}
	if _, err := EncodeFrame(&Frame{Type: mtMax}); !errors.Is(err, ErrBadFrame) {
		t.Errorf("sentinel type: %v", err)
	}
	long := strings.Repeat("x", MaxChannelLen+1)
	if _, err := EncodeFrame(&Frame{Type: MTEvent, Channel: long}); !errors.Is(err, ErrBadFrame) {
		t.Errorf("long channel: %v", err)
	}
}

func TestFrameDecodeErrors(t *testing.T) {
	good, err := EncodeFrame(&Frame{Type: MTEvent, Channel: "c", Seq: 1})
	if err != nil {
		t.Fatal(err)
	}

	if _, err := DecodeFrame(nil); err == nil {
		t.Error("nil input must fail")
	}
	if _, err := DecodeFrame([]byte{0x00, 0x01, 1, 1}); !errors.Is(err, ErrBadFrame) {
		t.Errorf("bad magic: %v", err)
	}
	bad := append([]byte{}, good...)
	bad[2] = 99 // version byte
	if _, err := DecodeFrame(bad); !errors.Is(err, ErrVersion) {
		t.Errorf("bad version: %v", err)
	}
	bad2 := append([]byte{}, good...)
	bad2[3] = 0 // type byte
	if _, err := DecodeFrame(bad2); !errors.Is(err, ErrBadFrame) {
		t.Errorf("bad type: %v", err)
	}
	if _, err := DecodeFrame(good[:8]); err == nil {
		t.Error("truncated header must fail")
	}
}

func TestMsgTypeString(t *testing.T) {
	if MTEvent.String() != "event" || MTFileNack.String() != "file-nack" {
		t.Error("MsgType names wrong")
	}
	if !strings.Contains(MsgType(200).String(), "200") {
		t.Error("unknown type string")
	}
	if MsgType(0).Valid() || mtMax.Valid() {
		t.Error("Valid() bounds wrong")
	}
}
