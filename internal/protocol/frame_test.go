package protocol

import (
	"bytes"
	"errors"
	"strings"
	"testing"
	"time"

	"uavmw/internal/qos"
)

func TestFrameRoundTrip(t *testing.T) {
	f := &Frame{
		Type:     MTEvent,
		Flags:    0x3,
		Encoding: 1,
		Priority: qos.PriorityHigh,
		Channel:  "mission.photo",
		Seq:      987654321,
		Payload:  []byte("payload-bytes"),
	}
	raw, err := EncodeFrame(f)
	if err != nil {
		t.Fatalf("EncodeFrame: %v", err)
	}
	got, err := DecodeFrame(raw)
	if err != nil {
		t.Fatalf("DecodeFrame: %v", err)
	}
	if got.Type != f.Type || got.Flags != f.Flags || got.Encoding != f.Encoding ||
		got.Priority != f.Priority || got.Channel != f.Channel || got.Seq != f.Seq {
		t.Errorf("header mismatch: %+v vs %+v", got, f)
	}
	if !bytes.Equal(got.Payload, f.Payload) {
		t.Errorf("payload mismatch: %q", got.Payload)
	}
}

func TestFrameAllTypesRoundTrip(t *testing.T) {
	for mt := MTAnnounce; mt < mtMax; mt++ {
		raw, err := EncodeFrame(&Frame{Type: mt, Channel: "c", Seq: uint64(mt)})
		if err != nil {
			t.Fatalf("encode %v: %v", mt, err)
		}
		got, err := DecodeFrame(raw)
		if err != nil {
			t.Fatalf("decode %v: %v", mt, err)
		}
		if got.Type != mt {
			t.Errorf("type %v decoded as %v", mt, got.Type)
		}
	}
}

func TestFrameEmptyPayload(t *testing.T) {
	raw, err := EncodeFrame(&Frame{Type: MTHeartbeat})
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeFrame(raw)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Payload) != 0 || got.Channel != "" {
		t.Errorf("got %+v", got)
	}
}

func TestFrameEncodeErrors(t *testing.T) {
	if _, err := EncodeFrame(&Frame{Type: 0}); !errors.Is(err, ErrBadFrame) {
		t.Errorf("zero type: %v", err)
	}
	if _, err := EncodeFrame(&Frame{Type: mtMax}); !errors.Is(err, ErrBadFrame) {
		t.Errorf("sentinel type: %v", err)
	}
	long := strings.Repeat("x", MaxChannelLen+1)
	if _, err := EncodeFrame(&Frame{Type: MTEvent, Channel: long}); !errors.Is(err, ErrBadFrame) {
		t.Errorf("long channel: %v", err)
	}
}

func TestFrameDecodeErrors(t *testing.T) {
	good, err := EncodeFrame(&Frame{Type: MTEvent, Channel: "c", Seq: 1})
	if err != nil {
		t.Fatal(err)
	}

	if _, err := DecodeFrame(nil); err == nil {
		t.Error("nil input must fail")
	}
	if _, err := DecodeFrame([]byte{0x00, 0x01, 1, 1}); !errors.Is(err, ErrBadFrame) {
		t.Errorf("bad magic: %v", err)
	}
	bad := append([]byte{}, good...)
	bad[2] = 99 // version byte
	if _, err := DecodeFrame(bad); !errors.Is(err, ErrVersion) {
		t.Errorf("bad version: %v", err)
	}
	bad2 := append([]byte{}, good...)
	bad2[3] = 0 // type byte
	if _, err := DecodeFrame(bad2); !errors.Is(err, ErrBadFrame) {
		t.Errorf("bad type: %v", err)
	}
	if _, err := DecodeFrame(good[:8]); err == nil {
		t.Error("truncated header must fail")
	}
}

func TestFrameBudgetRoundTrip(t *testing.T) {
	// An MTCall carrying its remaining deadline budget must survive the
	// codec at microsecond granularity.
	f := &Frame{
		Type:     MTCall,
		Priority: qos.PriorityNormal,
		Channel:  "nav.compute",
		Seq:      42,
		Budget:   137 * time.Millisecond,
		Payload:  []byte{1, 2, 3},
	}
	raw, err := EncodeFrame(f)
	if err != nil {
		t.Fatalf("EncodeFrame: %v", err)
	}
	got, err := DecodeFrame(raw)
	if err != nil {
		t.Fatalf("DecodeFrame: %v", err)
	}
	if got.Budget != f.Budget {
		t.Errorf("budget %v, want %v", got.Budget, f.Budget)
	}
	if got.Flags&FlagHasBudget == 0 {
		t.Error("FlagHasBudget not set on decode")
	}
	if !bytes.Equal(got.Payload, f.Payload) {
		t.Errorf("payload corrupted by budget word: %v", got.Payload)
	}
	if got.Seq != f.Seq || got.Channel != f.Channel {
		t.Errorf("header mismatch: %+v", got)
	}
}

func TestFrameBudgetEdgeCases(t *testing.T) {
	// Zero budget: no flag, no extra word, decodes to zero.
	raw, err := EncodeFrame(&Frame{Type: MTCall, Channel: "f", Seq: 1})
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeFrame(raw)
	if err != nil {
		t.Fatal(err)
	}
	if got.Budget != 0 || got.Flags&FlagHasBudget != 0 {
		t.Errorf("zero budget leaked onto the wire: %+v", got)
	}

	// A stale FlagHasBudget with no budget must be cleared by encode, not
	// corrupt the payload framing.
	raw, err = EncodeFrame(&Frame{Type: MTCall, Flags: FlagHasBudget, Channel: "f", Seq: 1, Payload: []byte{9}})
	if err != nil {
		t.Fatal(err)
	}
	if got, err = DecodeFrame(raw); err != nil {
		t.Fatal(err)
	}
	if got.Budget != 0 || !bytes.Equal(got.Payload, []byte{9}) {
		t.Errorf("stale flag mishandled: %+v", got)
	}

	// Sub-microsecond budgets round up to the smallest wire value instead
	// of decoding to "no budget".
	raw, err = EncodeFrame(&Frame{Type: MTCall, Channel: "f", Seq: 1, Budget: time.Nanosecond})
	if err != nil {
		t.Fatal(err)
	}
	if got, err = DecodeFrame(raw); err != nil {
		t.Fatal(err)
	}
	if got.Budget != time.Microsecond {
		t.Errorf("tiny budget decoded as %v", got.Budget)
	}

	// Oversized budgets saturate rather than wrap.
	raw, err = EncodeFrame(&Frame{Type: MTCall, Channel: "f", Seq: 1, Budget: 100 * time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	if got, err = DecodeFrame(raw); err != nil {
		t.Fatal(err)
	}
	if got.Budget != maxBudget {
		t.Errorf("oversized budget decoded as %v, want %v", got.Budget, maxBudget)
	}

	// Negative budgets are a programming error, rejected at encode.
	if _, err := EncodeFrame(&Frame{Type: MTCall, Channel: "f", Budget: -time.Second}); !errors.Is(err, ErrBadFrame) {
		t.Errorf("negative budget: %v", err)
	}

	// A flagged frame truncated before the budget word must fail cleanly.
	raw, err = EncodeFrame(&Frame{Type: MTCall, Channel: "f", Seq: 1, Budget: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeFrame(raw[:len(raw)-4]); err == nil {
		t.Error("truncated budget word accepted")
	}
}

func TestMsgTypeString(t *testing.T) {
	if MTEvent.String() != "event" || MTFileNack.String() != "file-nack" {
		t.Error("MsgType names wrong")
	}
	if MTBusy.String() != "busy" {
		t.Error("MTBusy name wrong")
	}
	if !strings.Contains(MsgType(200).String(), "200") {
		t.Error("unknown type string")
	}
	if MsgType(0).Valid() || mtMax.Valid() {
		t.Error("Valid() bounds wrong")
	}
}
