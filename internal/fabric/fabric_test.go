package fabric_test

import (
	"testing"

	"uavmw/internal/core"
	"uavmw/internal/fabric"
	"uavmw/internal/transport"
)

func TestGroupNamingIsDisjoint(t *testing.T) {
	name := "gps.position"
	groups := map[string]string{
		"variable": fabric.VarGroup(name),
		"file":     fabric.FileGroup(name),
		"event":    fabric.EventGroup(name),
	}
	seen := map[string]string{}
	for kind, g := range groups {
		if g == "" || g == name {
			t.Errorf("%s group %q does not namespace the name", kind, g)
		}
		if g == fabric.DiscoveryGroup {
			t.Errorf("%s group collides with the discovery group", kind)
		}
		if prev, dup := seen[g]; dup {
			t.Errorf("%s and %s share group %q", kind, prev, g)
		}
		seen[g] = kind
	}
}

func TestGroupNamesAreDeterministic(t *testing.T) {
	if fabric.EventGroup("a") != fabric.EventGroup("a") {
		t.Error("EventGroup not deterministic")
	}
	if fabric.EventGroup("a") == fabric.EventGroup("b") {
		t.Error("distinct topics share a group")
	}
}

// TestNodeConformsToFabric exercises the container through the Fabric
// interface the engines are written against: identity, sequence allocation
// and group membership.
func TestNodeConformsToFabric(t *testing.T) {
	bus := transport.NewBus()
	ep, err := bus.Endpoint("n1")
	if err != nil {
		t.Fatal(err)
	}
	node, err := core.NewNode(core.WithDatagram(ep))
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = node.Close() }()

	var f fabric.Fabric = node
	if f.Self() != "n1" {
		t.Errorf("Self = %q", f.Self())
	}
	if f.Encoding() == nil {
		t.Error("nil encoding")
	}
	if f.Directory() == nil {
		t.Error("nil directory")
	}
	a, b := f.NextSeq(), f.NextSeq()
	if b <= a {
		t.Errorf("NextSeq not monotonic: %d then %d", a, b)
	}
	if err := f.Join(fabric.EventGroup("t")); err != nil {
		t.Errorf("Join: %v", err)
	}
	if err := f.Leave(fabric.EventGroup("t")); err != nil {
		t.Errorf("Leave: %v", err)
	}
	done := make(chan struct{})
	if err := f.Schedule(3, func() { close(done) }); err != nil {
		t.Fatalf("Schedule: %v", err)
	}
	<-done
}
