// Package fabric defines the narrow interface between the service container
// and the four communication-primitive engines (variables, events, remote
// invocation, file transfer). The container implements Fabric; engines are
// written against it, which keeps them free of container internals and lets
// tests substitute instrumented fabrics.
package fabric

import (
	"time"

	"uavmw/internal/clock"

	"uavmw/internal/encoding"
	"uavmw/internal/metrics"
	"uavmw/internal/naming"
	"uavmw/internal/protocol"
	"uavmw/internal/qos"
	"uavmw/internal/transport"
)

// Fabric is what a primitive engine may ask of its container.
//
// Send methods encode the frame (header and payload both) into wire buffers
// before returning; they must not retain the *protocol.Frame or alias its
// Payload afterwards. Engines rely on this to pool frames and payload
// buffers on hot paths.
//
// Transmission is priority-aware: the frame's Priority selects the egress
// lane it drains from (strict priority per destination, token-bucket-shaped
// PriorityBulk, small-frame coalescing — see package egress). Datagram
// sends are therefore asynchronous: a nil return means the frame was
// accepted into its lane, not that it reached the transport; post-enqueue
// transport failures surface in the container's egress stats. Engines must
// set Priority deliberately — it decides both who the frame may overtake on
// a congested link and how the receiver schedules its handler.
//
// Transmission is also bearer-aware: a container may carry several
// datagram links (WiFi, radio modem, satcom), and the frame's Priority —
// through the container's link policy and per-bearer health monitoring —
// additionally selects WHICH link the frame rides (bulk on the fattest
// healthy pipe, critical on the most robust one, automatic failover when a
// bearer blacks out). Engines stay bearer-agnostic: they never name a
// link, and a frame's class is the only routing input they control.
// Unicast sends ride exactly one bearer per transmission attempt (ARQ
// retransmissions may re-select, which is how in-flight reliable traffic
// survives a bearer blackout); SendGroup may put one copy on several
// bearers (discovery rides every live bearer; receivers dedup), so group
// senders must tolerate duplicate delivery — the ack/dedup layer already
// guarantees this for ack-required frames.
type Fabric interface {
	// Self is the local node identity.
	Self() transport.NodeID
	// Encoding is the node's payload encoding.
	Encoding() encoding.Encoding
	// Directory is the node's name cache (§3 name management).
	Directory() *naming.Directory
	// Schedule queues handler work on the container scheduler (§6).
	Schedule(p qos.Priority, job func()) error
	// NextSeq allocates a node-unique message id for reliable sends and
	// call matching.
	NextSeq() uint64
	// SendBestEffort transmits one unacknowledged frame to a node over
	// the datagram transport (§4.1 variables).
	//
	// No-retention contract (all three send methods): the fabric encodes
	// f synchronously and keeps neither the frame nor its payload after
	// the call returns, so callers may hand in pooled storage and recycle
	// it immediately — the engines do exactly that on their hot paths.
	// Fabric implementations (including test fakes) that defer the send
	// must copy first.
	SendBestEffort(to transport.NodeID, f *protocol.Frame) error
	// SendGroup multicasts one unacknowledged frame (§4.1, §4.4).
	SendGroup(group string, f *protocol.Frame) error
	// SendReliable delivers one frame with the given reliability class:
	// ReliableARQ uses the datagram transport plus the protocol-level
	// ack/retransmit engine; ReliableStream uses the stream transport
	// when the node has one (§4.2, §4.3). done is invoked exactly once
	// with the outcome; it may run on a timer goroutine, and the sender
	// may have abandoned the exchange by then (a hedged RPC caller that
	// already took another provider's answer), so done must not assume a
	// waiting receiver.
	SendReliable(to transport.NodeID, f *protocol.Frame, rel qos.Reliability, done func(error))
	// Join subscribes the node to a multicast group.
	Join(group string) error
	// Leave unsubscribes the node from a multicast group.
	Leave(group string) error
	// OfferChanged tells the container the local resource offer changed
	// (a registration or withdrawal). The container diffs the offer
	// against its versioned record log and multicasts an incremental
	// announcement immediately, so discovery latency is one network hop
	// rather than one announce period (§3 name management).
	OfferChanged()
}

// ReliableOpts tunes one reliable-ARQ send. Zero fields take the
// container's engine defaults.
type ReliableOpts struct {
	// AckTimeout is the initial retransmission timeout. QoS policies set
	// it per primitive (qos.EventQoS.AckTimeout): a critical alarm routed
	// onto a 40ms-latency radio bearer needs a longer fuse than the same
	// alarm on local WiFi, or queueing jitter spawns duplicate
	// transmissions that eat the narrow link's headroom.
	AckTimeout time.Duration
	// MaxRetries is the retransmission budget before the send fails.
	MaxRetries int
}

// TunedSender is optionally implemented by fabrics whose ReliableARQ path
// accepts per-send tuning. Engines should feature-test for it and fall
// back to SendReliable (engine-default tuning) when absent, so
// instrumented test fabrics keep working unchanged.
type TunedSender interface {
	SendReliableTuned(to transport.NodeID, f *protocol.Frame, rel qos.Reliability, opts ReliableOpts, done func(error))
}

// Clocked is optionally implemented by fabrics that run on an injectable
// time source. Engines feature-test for it and pace their loops on the
// same clock as the container, so a node built on a virtual clock carries
// every layer's timing with it; absent, engines default to the wall clock
// and test fabrics keep working unchanged.
type Clocked interface {
	Clock() clock.Clock
}

// Instrumented is optionally implemented by fabrics that carry the node's
// unified metrics registry. Engines resolve it through MetricsOf, so every
// plane's counters and typed-error families land in one exportable
// registry (core.Node.MetricsSnapshot); bare test fabrics get a private
// registry and keep working unchanged.
type Instrumented interface {
	Metrics() *metrics.Registry
}

// MetricsOf returns f's registry when f is Instrumented, else a fresh
// private registry — never nil, so engines can resolve counter handles
// unconditionally at construction.
func MetricsOf(f Fabric) *metrics.Registry {
	if in, ok := f.(Instrumented); ok {
		if reg := in.Metrics(); reg != nil {
			return reg
		}
	}
	return metrics.NewRegistry()
}

// Group naming scheme shared by engines and the container.
const (
	// DiscoveryGroup carries announcements and byes.
	DiscoveryGroup   = "uavmw.disco"
	varGroupPrefix   = "v:"
	fileGroupPrefix  = "f:"
	eventGroupPrefix = "e:"
)

// VarGroup names the multicast group of a published variable.
func VarGroup(name string) string { return varGroupPrefix + name }

// FileGroup names the multicast group of a file transfer.
func FileGroup(name string) string { return fileGroupPrefix + name }

// EventGroup names the multicast group of a group-addressed event topic
// (qos.DeliverMulticast).
func EventGroup(topic string) string { return eventGroupPrefix + topic }
