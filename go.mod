module uavmw

go 1.22
