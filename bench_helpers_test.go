package uavmw

import (
	"time"

	"uavmw/internal/core"
	"uavmw/internal/protocol"
	"uavmw/internal/qos"
	"uavmw/internal/transport"
	"uavmw/internal/variables"
)

// newBenchNode builds a container with fast discovery for benchmarks.
func newBenchNode(tr transport.Transport) (*core.Node, error) {
	return core.NewNode(
		core.WithDatagram(tr),
		core.WithAnnouncePeriod(50*time.Millisecond),
	)
}

// subscribeNothing returns empty subscription options.
func subscribeNothing() variables.SubscribeOptions { return variables.SubscribeOptions{} }

func encodeBenchFrame(payload []byte, seq uint64) ([]byte, error) {
	return protocol.EncodeFrame(&protocol.Frame{
		Type:     protocol.MTEvent,
		Encoding: 1,
		Priority: qos.PriorityHigh,
		Channel:  "bench.topic",
		Seq:      seq,
		Payload:  payload,
	})
}

func decodeBenchFrame(raw []byte) (*protocol.Frame, error) {
	return protocol.DecodeFrame(raw)
}
