// Package uavmw is a from-scratch Go implementation of the middleware
// architecture for unmanned aircraft avionics published by López, Royo,
// Pastor, Barrado and Santamaria at ACM/IFIP/USENIX Middleware 2007.
//
// The system is a service-container middleware for UAV mission and payload
// control: one container per network node manages service lifecycles, name
// resolution with proxy caching, and all network access, and offers four
// communication primitives. Name discovery is incremental: registrations
// multicast compact versioned deltas (MTAnnounceDelta) the moment they
// happen, the periodic beacon is a constant-size digest (MTHeartbeat) so
// steady-state discovery wire cost is O(nodes) rather than O(total
// records), and receivers repair version gaps, unknown nodes, and fresh
// epochs with unicast anti-entropy sync (MTSyncReq/MTSyncRep — catch-up
// deltas for small gaps, MTU-chunked full snapshots otherwise). The four
// primitives are Variables (best-effort multicast pub/sub),
// Events (guaranteed delivery, unicast per subscriber or group-addressed
// multicast with NACK-based gap repair via qos.DeliverMulticast), Remote
// Invocation (typed calls with redundancy failover — concurrent engine
// with the remaining deadline propagated on the wire, hedged failover via
// qos.CallQoS.HedgeAfter, and MTBusy admission control so overloaded
// providers shed instead of queueing), and File Transmission
// (an MFTP-like multicast bulk protocol). The implementation follows the
// paper's PEPt layering: pluggable Presentation, Encoding, Protocol and
// Transport subsystems plus a pluggable fixed-priority scheduler.
//
// Priority is enforced end to end, not just in the receiving scheduler:
// every datagram send drains through a priority-aware egress plane
// (internal/egress) of per-destination strict-priority lanes with
// drop-oldest overflow, a token-bucket pacer that shapes the PriorityBulk
// class (core.WithBulkRateBPS, qos.TransferQoS.RateBPS) so file-transfer
// chunks never fill a constrained link's queue ahead of critical frames,
// and coalescing of small same-lane frames into MTBatch datagrams that
// receivers unpack transparently. Experiment E13 measures the priority
// inversion this removes on a 1 Mb/s air-to-ground link.
//
// Transmission spans redundant heterogeneous datalinks: a node registers N
// datagram bearers (core.WithBearer — e.g. short-range WiFi plus a
// long-range radio modem), each wrapped in a link monitor
// (internal/link) that tracks per-bearer liveness, probe RTT and loss
// (MTProbe/MTProbeEcho on idle links; every received packet otherwise),
// and each with its own egress lanes and bulk pacer keyed
// (bearer, destination, class). A policy layer (qos.LinkPolicy, or the
// default derived from qos.BearerProfile) routes classes onto bearers —
// bulk on the highest-rate healthy link, critical pinned to the most
// robust — and fails a class over within a failure deadline when its
// bearer blacks out: queued frames are rerouted, ARQ retransmissions
// re-select, and discovery (which rides every bearer, with per-bearer
// reachability advertised as naming.KindBearer records in the offer log)
// keeps peer liveness alive through any single link's loss. Experiment E14
// drives a mission through a WiFi→radio handover under a mid-run blackout.
//
// The module path is uavmw; build with go build ./... and verify with
// go test ./... (see README.md for the package map).
//
// Start with the README for the architecture map, DESIGN.md for the system
// inventory, and EXPERIMENTS.md for the reproduced evaluation. The
// runnable entry points are in examples/ and cmd/.
//
// The benchmarks in this directory regenerate one point of each experiment
// sweep; the full parameter sweeps live in cmd/uavbench.
package uavmw
