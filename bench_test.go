package uavmw

// One benchmark per experiment in EXPERIMENTS.md. Each wraps a single
// point of the corresponding uavbench sweep in testing.B so regressions
// surface in ordinary `go test -bench=.` runs; the full parameter sweeps
// (loss rates, subscriber counts, file sizes) are printed by cmd/uavbench.

import (
	"fmt"
	"testing"
	"time"

	"uavmw/internal/encoding"
	"uavmw/internal/experiments"
	"uavmw/internal/flightsim"
	"uavmw/internal/imaging"
	"uavmw/internal/presentation"
	"uavmw/internal/qos"
	"uavmw/internal/scheduler"
	"uavmw/internal/services"
	"uavmw/internal/transport"
	"uavmw/internal/variables"
)

// BenchmarkE1_EventVsRPC reports median one-way notification latency for
// the event primitive and its remote-invocation equivalent (§4.3 claim:
// "events seem faster than their function equivalent").
func BenchmarkE1_EventVsRPC(b *testing.B) {
	res, err := experiments.RunE1(max(b.N, 100), 64)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(res.Event.Percentile(50).Nanoseconds()), "event-p50-ns")
	b.ReportMetric(float64(res.RPC.Percentile(50).Nanoseconds()), "rpc-p50-ns")
	b.ReportMetric(float64(res.RPC.Percentile(50))/float64(res.Event.Percentile(50)), "rpc/event")
}

// BenchmarkE2_EventARQvsTCP compares per-message ARQ with a TCP-like
// in-order stream at 5% loss (§4.2 claim).
func BenchmarkE2_EventARQvsTCP(b *testing.B) {
	res, err := experiments.RunE2(200, 0.05, 64, 42)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(res.ARQTotal.Milliseconds()), "arq-total-ms")
	b.ReportMetric(float64(res.GBNTotal.Milliseconds()), "gbn-total-ms")
	b.ReportMetric(float64(res.GBNPerMsg.Percentile(99))/float64(res.ARQPerMsg.Percentile(99)), "gbn/arq-p99")
}

// BenchmarkE3_MulticastBandwidth reports bytes-on-wire per delivered event
// occurrence for group-addressed multicast vs unicast ARQ fan-out at
// 2/8/32 subscribers (§4.1 claim applied to the §4.2 event primitive):
// multicast sends each payload once per group instead of once per
// subscriber.
func BenchmarkE3_MulticastBandwidth(b *testing.B) {
	for _, subs := range []int{2, 8, 32} {
		b.Run(fmt.Sprintf("subs=%d", subs), func(b *testing.B) {
			res, err := experiments.RunE3(nil, subs, 100)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(res.McastBytes), "mcast-bytes")
			b.ReportMetric(float64(res.UcastBytes), "ucast-bytes")
			b.ReportMetric(float64(res.UcastBytes)/float64(res.McastBytes), "saving-x")
		})
	}
}

// BenchmarkE4_MFTPvsEventTransfer distributes 256 KB to 4 receivers at 2%
// loss through the file primitive and through chunked events (§4.4 claim).
func BenchmarkE4_MFTPvsEventTransfer(b *testing.B) {
	res, err := experiments.RunE4(256<<10, 4, 0.02, 7)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(res.MFTPTime.Milliseconds()), "mftp-ms")
	b.ReportMetric(float64(res.EventsTime.Milliseconds()), "events-ms")
	b.ReportMetric(float64(res.EventsTime)/float64(res.MFTPTime), "speedup-x")
}

// BenchmarkE5_LocalBypass measures same-container vs networked access for
// a 1 MB file resource and for variable delivery (§4.4 bypass, figure F2).
func BenchmarkE5_LocalBypass(b *testing.B) {
	res, err := experiments.RunE5(1<<20, max(b.N, 50))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(res.LocalFetch.Microseconds()), "local-fetch-us")
	b.ReportMetric(float64(res.RemoteFetch.Microseconds()), "remote-fetch-us")
	b.ReportMetric(float64(res.LocalVar.Nanoseconds()), "local-var-ns")
	b.ReportMetric(float64(res.RemoteVar.Nanoseconds()), "remote-var-ns")
}

// BenchmarkE6_EncodingCodec measures the PEPt encoding layer on the
// telemetry payload: the generic walker, the compiled codec, and the debug
// encoding (F4 pluggability; §6 efficiency focus).
func BenchmarkE6_EncodingCodec(b *testing.B) {
	typ := services.TypePosition
	val := services.PositionValue(flightStateForBench())
	codec, err := encoding.Compile(typ)
	if err != nil {
		b.Fatal(err)
	}
	data, err := codec.Marshal(val)
	if err != nil {
		b.Fatal(err)
	}

	b.Run("generic-marshal", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := encoding.Marshal(typ, val); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("compiled-marshal", func(b *testing.B) {
		b.ReportAllocs()
		w := encoding.NewWriter(64)
		for i := 0; i < b.N; i++ {
			w.Reset()
			if err := codec.Encode(w, val); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("compiled-unmarshal", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := codec.Unmarshal(data); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("debug-marshal", func(b *testing.B) {
		b.ReportAllocs()
		enc := encoding.Debug{}
		for i := 0; i < b.N; i++ {
			if _, err := enc.Marshal(typ, val); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func flightStateForBench() flightsim.State {
	return flightsim.State{
		Lat: 41.275, Lon: 1.987, AltM: 120, HeadingDeg: 270, SpeedMS: 25, Waypoint: 2,
	}
}

// BenchmarkE7_FailoverRedirect measures redirection latency after the
// pinned provider dies, at a 100 ms failure deadline (§4.3).
func BenchmarkE7_FailoverRedirect(b *testing.B) {
	res, err := experiments.RunE7(100 * time.Millisecond)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(res.Redirect.Milliseconds()), "redirect-ms")
	b.ReportMetric(float64(res.CallsFailed), "failed-calls")
}

// BenchmarkE11_RPCHedgedFailover runs 8 concurrent callers against a
// statically-pinned provider that stalls past the 250ms QoS deadline, at
// 2% loss. Hedged calls must complete within the deadline via the
// redundant provider; the unhedged baseline burns the whole budget and
// fails (§4.3 bounded-latency redirection).
func BenchmarkE11_RPCHedgedFailover(b *testing.B) {
	unhedged, err := experiments.RunE11(nil, 8, 10, false, 0.02, 400*time.Millisecond, 11)
	if err != nil {
		b.Fatal(err)
	}
	hedged, err := experiments.RunE11(nil, 8, 10, true, 0.02, 400*time.Millisecond, 11)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(unhedged.OK), "unhedged-ok")
	b.ReportMetric(float64(hedged.OK), "hedged-ok")
	b.ReportMetric(hedged.Throughput, "hedged-calls/s")
	b.ReportMetric(float64(hedged.Latency.Percentile(99).Milliseconds()), "hedged-p99-ms")
}

// BenchmarkE12_DiscoveryWireCost measures steady-state discovery bytes per
// announce period for 16 nodes × 100 records under the incremental plane
// (constant-size digests + registration deltas) against the old full-state
// re-broadcast, plus the latency from a new offer to fleet-wide
// resolvability (§3 name management at scale).
func BenchmarkE12_DiscoveryWireCost(b *testing.B) {
	res, err := experiments.RunE12(nil, 16, 100, 12)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(res.SteadyBytesPerPeriod, "steady-B/period")
	b.ReportMetric(res.BaselineBytesPerPeriod, "fullstate-B/period")
	b.ReportMetric(res.BaselineBytesPerPeriod/res.SteadyBytesPerPeriod, "saving-x")
	b.ReportMetric(float64(res.Converge.Microseconds()), "converge-us")
}

// BenchmarkE13_EgressPriorityInversion runs a 96KB bulk transfer to a
// ground station over a simulated 1 Mb/s air-to-ground link while 50Hz
// PriorityCritical alarms flow. Unshaped (flood) bulk queues seconds of
// chunks ahead of every alarm at the link; the egress plane (strict
// priority lanes + paced bulk) keeps alarm p99 near the unloaded baseline
// while bulk stays near line rate.
func BenchmarkE13_EgressPriorityInversion(b *testing.B) {
	res, err := experiments.RunE13(nil, 96*1024, 125_000, 50, 13)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(res.Unloaded.Percentile(99).Microseconds()), "unloaded-p99-us")
	b.ReportMetric(float64(res.Flood.Percentile(99).Microseconds()), "flood-p99-us")
	b.ReportMetric(float64(res.Shaped.Percentile(99).Microseconds()), "shaped-p99-us")
	b.ReportMetric(res.ShapedGoodput/1024, "shaped-KB/s")
	b.ReportMetric(100*res.ShapedGoodput/125_000, "shaped-line-%")
}

// BenchmarkE8_SchedulerPriority loads the fixed-priority pool and reports
// p99 queue latency for the critical and bulk classes (§6 soft real time).
func BenchmarkE8_SchedulerPriority(b *testing.B) {
	res, err := experiments.RunE8(4, 2000, 100, 50*time.Microsecond)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(res.Priorities[qos.PriorityCritical].Percentile(99).Microseconds()), "critical-p99-us")
	b.ReportMetric(float64(res.Priorities[qos.PriorityBulk].Percentile(99).Microseconds()), "bulk-p99-us")
}

// BenchmarkE8_InlineSchedulerBaseline is the F4 ablation partner: the
// pass-through scheduler has no queueing at all (and no isolation).
func BenchmarkE8_InlineSchedulerBaseline(b *testing.B) {
	s := scheduler.NewInline()
	defer s.Stop()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := s.Submit(qos.PriorityNormal, func() {}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE9_Figure3Mission runs the full §5 mission per iteration on the
// in-process bus: 4 containers, 6 services, 4 photo sites.
func BenchmarkE9_Figure3Mission(b *testing.B) {
	plan := flightsim.SurveyPlan("bench", 41.2750, 1.9870, 2, 600, 200, 120, 25)
	for i := 0; i < b.N; i++ {
		bus := transport.NewBus()
		res, err := services.RunMission(services.MissionConfig{
			Plan: plan,
			Transports: func(id transport.NodeID) (transport.Transport, error) {
				return bus.Endpoint(id)
			},
			TimeScale:  80,
			SampleRate: 15 * time.Millisecond,
			Timeout:    2 * time.Minute,
		})
		if err != nil {
			b.Fatal(err)
		}
		if res.Photos != 4 {
			b.Fatalf("photos = %d", res.Photos)
		}
	}
}

// BenchmarkE10_ValidityCache measures serving a cached variable value
// (the §4.1 stale-value path) against a fresh decode of the same sample.
func BenchmarkE10_ValidityCache(b *testing.B) {
	bus := transport.NewBus()
	ep, err := bus.Endpoint("solo")
	if err != nil {
		b.Fatal(err)
	}
	node, err := newBenchNode(ep)
	if err != nil {
		b.Fatal(err)
	}
	defer func() { _ = node.Close() }()

	typ := services.TypePosition
	val := services.PositionValue(flightStateForBench())
	pub, err := node.Variables().Offer("b.pos", "bench", typ, qos.VariableQoS{Validity: time.Hour})
	if err != nil {
		b.Fatal(err)
	}
	sub, err := node.Variables().Subscribe("b.pos", typ, subscribeNothing())
	if err != nil {
		b.Fatal(err)
	}
	defer sub.Close()
	if err := pub.Publish(val); err != nil {
		b.Fatal(err)
	}

	b.Run("cached-get", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, _, err := sub.Get(); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("decode-per-sample", func(b *testing.B) {
		data, err := encoding.Marshal(typ, val)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := encoding.Unmarshal(typ, data); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkF2_LocalVsRemoteDelivery measures one publish through the local
// bypass against one acknowledged cross-node publish (figure F2).
func BenchmarkF2_LocalVsRemoteDelivery(b *testing.B) {
	res, err := experiments.RunE5(4096, max(b.N, 50))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(res.LocalVar.Nanoseconds()), "local-ns")
	b.ReportMetric(float64(res.RemoteVar.Nanoseconds()), "remote-ns")
}

// BenchmarkImagingPipeline measures the payload substrate: synthetic frame
// generation, PNG round trip and blob detection at the mission's default
// geometry (supporting workload for E9).
func BenchmarkImagingPipeline(b *testing.B) {
	spec := imaging.FrameSpec{Width: 640, Height: 480, TargetCount: 2, NoiseLevel: 40, Seed: 3}
	img, _, err := imaging.Generate(spec)
	if err != nil {
		b.Fatal(err)
	}
	data, err := imaging.EncodePNG(img)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("generate", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := imaging.Generate(spec); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("detect", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			imaging.DetectBlobs(img, 150, 9)
		}
	})
	b.Run("png-decode", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := imaging.DecodePNG(data); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkPresentationCoerce measures the presentation layer's value
// coercion on the telemetry struct (hot path of every publish).
func BenchmarkPresentationCoerce(b *testing.B) {
	typ := services.TypePosition
	val := services.PositionValue(flightStateForBench())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := presentation.Coerce(typ, val); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFrameCodec measures protocol frame encode/decode.
func BenchmarkFrameCodec(b *testing.B) {
	payload := make([]byte, 64)
	b.Run("encode", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := encodeBenchFrame(payload, uint64(i)); err != nil {
				b.Fatal(err)
			}
		}
	})
	raw, err := encodeBenchFrame(payload, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("decode", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := decodeBenchFrame(raw); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func sizedName(n int) string { return fmt.Sprintf("%d", n) }

var _ = sizedName // reserved for sweep-style sub-benchmarks

// BenchmarkWirePath measures one end-to-end telemetry publish between two
// containers on the in-process bus: presentation coercion, compiled
// encoding, pooled sample+frame encode, egress lane drain, transport
// delivery, pooled decode, and sample dispatch on the receiver's
// scheduler. Run with -benchmem: the wire path proper (encode → egress →
// transport → decode) is pooled and allocation-free, so the bytes/op
// reported here are value boxing at the presentation boundary and
// scheduler hand-off — the application-layer floor, not the wire.
func BenchmarkWirePath(b *testing.B) {
	bus := transport.NewBus()
	epA, err := bus.Endpoint("wp-a")
	if err != nil {
		b.Fatal(err)
	}
	epB, err := bus.Endpoint("wp-b")
	if err != nil {
		b.Fatal(err)
	}
	src, err := newBenchNode(epA)
	if err != nil {
		b.Fatal(err)
	}
	defer func() { _ = src.Close() }()
	dst, err := newBenchNode(epB)
	if err != nil {
		b.Fatal(err)
	}
	defer func() { _ = dst.Close() }()

	typ := services.TypePosition
	val := services.PositionValue(flightStateForBench())
	pub, err := src.Variables().Offer("wp.pos", "bench", typ, qos.VariableQoS{Validity: time.Hour})
	if err != nil {
		b.Fatal(err)
	}
	received := make(chan struct{}, 1)
	sub, err := dst.Variables().Subscribe("wp.pos", typ, variables.SubscribeOptions{
		OnSample: func(any, time.Time) {
			select {
			case received <- struct{}{}:
			default:
			}
		},
	})
	if err != nil {
		b.Fatal(err)
	}
	defer sub.Close()

	// Publish until the cross-node subscription handshake lands and the
	// first sample arrives; everything after is steady state.
	warm := time.After(5 * time.Second)
	for ready := false; !ready; {
		if err := pub.Publish(val); err != nil {
			b.Fatal(err)
		}
		select {
		case <-received:
			ready = true
		case <-warm:
			b.Fatal("wire path: subscriber never received a sample")
		case <-time.After(2 * time.Millisecond):
		}
	}

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := pub.Publish(val); err != nil {
			b.Fatal(err)
		}
		<-received
	}
}

// BenchmarkE14_BearerHandover drives the multi-bearer link plane through a
// WiFi→radio handover: a 96KB transfer rides the 1 Mb/s wifi bearer while
// 50Hz critical alarms pin to the 250 kb/s radio; wifi blacks out
// mid-transfer. Reported: alarm p99 across the blackout vs unloaded, the
// handover detection time, and the bulk rate recovered on the surviving
// radio against its shaped rate.
func BenchmarkE14_BearerHandover(b *testing.B) {
	res, err := experiments.RunE14(nil, 96*1024, 400*time.Millisecond, 14)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(res.Unloaded.Percentile(99).Microseconds()), "unloaded-p99-us")
	b.ReportMetric(float64(res.Multi.Percentile(99).Microseconds()), "loaded-p99-us")
	b.ReportMetric(float64(res.MultiLost), "alarms-lost")
	b.ReportMetric(float64(res.HandoverDetect.Milliseconds()), "handover-ms")
	b.ReportMetric(res.RecoveredBPS/1024, "recovered-KB/s")
	b.ReportMetric(100*res.RecoveredBPS/float64(res.RadioShaped), "recovered-shaped-%")
	b.ReportMetric(float64(res.SingleLost), "single-bearer-lost")
}
