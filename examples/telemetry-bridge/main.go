// Command telemetry-bridge reproduces the paper's §6 integration anecdote:
// an external telemetry consumer (FlightGear in the paper) fed from the
// middleware's position variable through a byte-stream adapter. The bridge
// service subscribes to gps.position and writes NMEA sentence bursts to
// stdout; point the output at a UDP socket and FlightGear's generic NMEA
// input consumes it unchanged.
//
// Run with:
//
//	go run ./examples/telemetry-bridge [-fixes 20]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"uavmw/internal/core"
	"uavmw/internal/flightsim"
	"uavmw/internal/services"
	"uavmw/internal/transport"
)

func main() {
	fixes := flag.Int("fixes", 20, "telemetry bursts to emit before exiting (0 = run forever)")
	flag.Parse()
	if err := run(*fixes); err != nil {
		log.SetFlags(0)
		log.Fatalf("telemetry-bridge: %v", err)
	}
}

func run(maxFixes int) error {
	bus := transport.NewBus()
	fcsEP, err := bus.Endpoint("fcs")
	if err != nil {
		return err
	}
	gsEP, err := bus.Endpoint("ground")
	if err != nil {
		return err
	}

	fcs, err := core.NewNode(core.WithDatagram(fcsEP), core.WithAnnouncePeriod(30*time.Millisecond))
	if err != nil {
		return err
	}
	defer func() { _ = fcs.Close() }()
	ground, err := core.NewNode(core.WithDatagram(gsEP), core.WithAnnouncePeriod(30*time.Millisecond))
	if err != nil {
		return err
	}
	defer func() { _ = ground.Close() }()

	plan := flightsim.SurveyPlan("telemetry-demo", 41.2750, 1.9870, 1, 1500, 200, 150, 30)
	aircraft, err := flightsim.New(plan, flightsim.Options{WindSpeedMS: 2, WindDirDeg: 45, Seed: 3})
	if err != nil {
		return err
	}

	gps := &services.GPS{Aircraft: aircraft, SampleRate: 100 * time.Millisecond, TimeScale: 10}
	if _, err := fcs.AddService(gps); err != nil {
		return err
	}
	bridge := &services.TelemetryBridge{Out: os.Stdout}
	if _, err := ground.AddService(bridge); err != nil {
		return err
	}

	if err := fcs.StartServices(); err != nil {
		return err
	}
	if err := ground.StartServices(); err != nil {
		return err
	}

	fmt.Fprintln(os.Stderr, "emitting NMEA telemetry (GPRMC+GPGGA per fix)...")
	for maxFixes == 0 || bridge.Fixes() < uint64(maxFixes) {
		time.Sleep(50 * time.Millisecond)
	}
	fmt.Fprintf(os.Stderr, "bridge emitted %d fixes; done\n", bridge.Fixes())
	return nil
}
