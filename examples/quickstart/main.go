// Command quickstart is the smallest complete uavmw program: two service
// containers on an in-process bus, exercising all four communication
// primitives — a variable (best-effort telemetry), an event (guaranteed
// notification), a remote invocation, and a file transfer.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"time"

	"uavmw/internal/core"
	"uavmw/internal/filetransfer"
	"uavmw/internal/presentation"
	"uavmw/internal/qos"
	"uavmw/internal/transport"
	"uavmw/internal/variables"
)

func main() {
	if err := run(); err != nil {
		log.SetFlags(0)
		log.Fatalf("quickstart: %v", err)
	}
}

func run() error {
	// One in-process bus; in a real deployment these containers live on
	// separate airframe computers connected by Ethernet (see the
	// uavnode command for the UDP variant).
	bus := transport.NewBus()
	sensorEP, err := bus.Endpoint("sensor-node")
	if err != nil {
		return err
	}
	consoleEP, err := bus.Endpoint("console-node")
	if err != nil {
		return err
	}

	sensor, err := core.NewNode(
		core.WithDatagram(sensorEP),
		core.WithAnnouncePeriod(30*time.Millisecond),
	)
	if err != nil {
		return err
	}
	defer func() { _ = sensor.Close() }()
	console, err := core.NewNode(
		core.WithDatagram(consoleEP),
		core.WithAnnouncePeriod(30*time.Millisecond),
	)
	if err != nil {
		return err
	}
	defer func() { _ = console.Close() }()

	// --- provider side: a variable, an event, a function, a file ---

	tempType := presentation.MustParse("{celsius:f64,sensor:str}")
	temp, err := sensor.Variables().Offer("env.temperature", "sensor", tempType,
		qos.VariableQoS{Validity: time.Second, Period: 50 * time.Millisecond})
	if err != nil {
		return err
	}

	alarm, err := sensor.Events().Offer("env.overheat", "sensor",
		presentation.MustParse("{celsius:f64}"), qos.EventQoS{})
	if err != nil {
		return err
	}

	if err := sensor.RPC().Register("sensor.calibrate", "sensor",
		presentation.MustParse("{offset:f64}"), presentation.Bool(), qos.CallQoS{},
		func(args any) (any, error) {
			offset := args.(map[string]any)["offset"].(float64)
			fmt.Printf("[sensor]  calibrated with offset %.2f\n", offset)
			return true, nil
		}); err != nil {
		return err
	}

	if _, err := sensor.Files().Offer("sensor.manual", "sensor",
		[]byte("UAVMW SENSOR MANUAL rev A\nHandle with care.\n"), qos.TransferQoS{}); err != nil {
		return err
	}

	// Let discovery propagate the offers.
	sensor.AnnounceNow()
	time.Sleep(100 * time.Millisecond)

	// --- consumer side ---

	sub, err := console.Variables().Subscribe("env.temperature", tempType,
		variables.SubscribeOptions{
			OnSample: func(v any, ts time.Time) {
				m := v.(map[string]any)
				fmt.Printf("[console] temperature %.1f°C from %s\n",
					m["celsius"], m["sensor"])
			},
		})
	if err != nil {
		return err
	}
	defer sub.Close()

	if _, err := console.Events().Subscribe("env.overheat",
		presentation.MustParse("{celsius:f64}"), qos.EventQoS{},
		func(v any, from transport.NodeID) {
			fmt.Printf("[console] OVERHEAT ALARM from %s: %v\n", from,
				v.(map[string]any)["celsius"])
		}); err != nil {
		return err
	}
	// Wait for the event subscription to reach the publisher.
	for i := 0; len(alarm.Subscribers()) == 0 && i < 100; i++ {
		time.Sleep(10 * time.Millisecond)
	}

	// 1. Variable: publish a few samples; loss would be tolerated.
	for i := 0; i < 3; i++ {
		if err := temp.Publish(map[string]any{
			"celsius": 21.5 + float64(i), "sensor": "bay-1",
		}); err != nil {
			return err
		}
		time.Sleep(60 * time.Millisecond)
	}
	if v, ts, err := sub.Get(); err == nil {
		m := v.(map[string]any)
		fmt.Printf("[console] cached value %.1f°C (age %v)\n",
			m["celsius"], time.Since(ts).Round(time.Millisecond))
	}

	// 2. Remote invocation: console calibrates the sensor by name; it has
	// no idea which node serves the call.
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	ok, err := console.RPC().Call(ctx, "sensor.calibrate",
		map[string]any{"offset": -0.5},
		presentation.MustParse("{offset:f64}"), presentation.Bool(), qos.CallQoS{})
	if err != nil {
		return err
	}
	fmt.Printf("[console] calibration accepted: %v\n", ok)

	// 3. Event: guaranteed delivery to every subscriber.
	if err := alarm.Publish(ctx, map[string]any{"celsius": 86.0}); err != nil {
		return err
	}

	// 4. File transfer: fetch the manual.
	manual, rev, err := console.Files().Fetch(ctx, "sensor.manual", filetransfer.FetchOptions{})
	if err != nil {
		return err
	}
	fmt.Printf("[console] fetched sensor.manual rev %d (%d bytes)\n", rev, len(manual))

	time.Sleep(100 * time.Millisecond) // let async handlers drain
	fmt.Fprintln(os.Stdout, "quickstart complete")
	return nil
}
