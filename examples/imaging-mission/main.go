// Command imaging-mission runs the paper's §5 application example (Figure
// 3) end to end: a GPS service feeds the position variable; mission control
// prepares the camera via remote invocation, fires photo events at the
// plan's photo waypoints; the camera publishes each frame as a file
// resource distributed by multicast file transfer to the storage and video
// services; the video service raises detection events the ground station
// and mission control observe.
//
// Run with:
//
//	go run ./examples/imaging-mission [-rows 2] [-loss 0.02] [-timescale 40]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"uavmw/internal/flightsim"
	"uavmw/internal/netsim"
	"uavmw/internal/services"
	"uavmw/internal/transport"
)

func main() {
	rows := flag.Int("rows", 2, "survey rows (2 photo sites each)")
	loss := flag.Float64("loss", 0.0, "simulated network loss probability [0,1)")
	timescale := flag.Float64("timescale", 40, "simulated seconds per wall-clock second")
	seed := flag.Int64("seed", 7, "simulation seed")
	flag.Parse()
	if err := run(*rows, *loss, *timescale, *seed); err != nil {
		log.SetFlags(0)
		log.Fatalf("imaging-mission: %v", err)
	}
}

func run(rows int, loss, timescale float64, seed int64) error {
	plan := flightsim.SurveyPlan("campus-survey", 41.2750, 1.9870, rows, 600, 200, 120, 25)
	photoSites := 0
	for _, wp := range plan.Waypoints {
		if wp.Photo {
			photoSites++
		}
	}
	fmt.Printf("mission %q: %d waypoints, %d photo sites, %.1f km, loss %.1f%%\n",
		plan.Name, len(plan.Waypoints), photoSites, plan.TotalDistanceM()/1000, loss*100)

	net := netsim.New(netsim.Config{
		Loss:    loss,
		Seed:    seed,
		Latency: time.Millisecond,
	})
	defer net.Close()

	start := time.Now()
	res, err := services.RunMission(services.MissionConfig{
		Plan: plan,
		Transports: func(id transport.NodeID) (transport.Transport, error) {
			return net.Node(id)
		},
		TimeScale:  timescale,
		SampleRate: 25 * time.Millisecond,
		Out:        os.Stdout,
		Timeout:    5 * time.Minute,
		Wind:       flightsim.Options{WindSpeedMS: 3, WindDirDeg: 310, GustMS: 1, Seed: seed},
	})
	if err != nil {
		return err
	}

	packets, bytes, lost := net.WireStats()
	fmt.Printf("\n--- mission summary (%v wall clock) ---\n", time.Since(start).Round(time.Millisecond))
	fmt.Printf("photos requested/stored : %d / %d\n", res.Photos, res.Stored)
	fmt.Printf("detections raised       : %d\n", res.Detections)
	fmt.Printf("gps track points stored : %d\n", res.TrackPoints)
	fmt.Printf("ground station samples  : %d positions, %d photo events, %d detections\n",
		res.GSPositions, res.GSEvents[services.EvtPhotoReady], res.GSEvents[services.EvtDetection])
	fmt.Printf("network                 : %d packets, %.1f KB on wire, %d lost\n",
		packets, float64(bytes)/1024, lost)
	return nil
}
