// Command fleet-update demonstrates the §4.4 configuration/code-upload use
// case: "configuration files or services program code to be uploaded to the
// service containers". One operations node offers a configuration resource;
// every airframe node watches it; the operator publishes two revisions and
// all nodes converge on each — including a node that joins late and
// immediately receives the current revision.
//
// Run with:
//
//	go run ./examples/fleet-update [-nodes 3] [-loss 0.05]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"sync"
	"time"

	"uavmw/internal/core"
	"uavmw/internal/filetransfer"
	"uavmw/internal/netsim"
	"uavmw/internal/protocol"
	"uavmw/internal/qos"
	"uavmw/internal/transport"
)

func main() {
	nodes := flag.Int("nodes", 3, "fleet nodes watching the configuration")
	loss := flag.Float64("loss", 0.05, "simulated network loss")
	flag.Parse()
	if err := run(*nodes, *loss); err != nil {
		log.SetFlags(0)
		log.Fatalf("fleet-update: %v", err)
	}
}

func newNode(net *netsim.Net, id transport.NodeID) (*core.Node, error) {
	ep, err := net.Node(id)
	if err != nil {
		return nil, err
	}
	return core.NewNode(
		core.WithDatagram(ep),
		core.WithAnnouncePeriod(30*time.Millisecond),
		core.WithARQ(protocol.WithTimeout(10*time.Millisecond)),
		core.WithFileTransfer(filetransfer.WithQueryWindow(15*time.Millisecond)),
	)
}

func run(fleetSize int, loss float64) error {
	net := netsim.New(netsim.Config{Loss: loss, Seed: 11, Latency: time.Millisecond})
	defer net.Close()

	ops, err := newNode(net, "ops")
	if err != nil {
		return err
	}
	defer func() { _ = ops.Close() }()

	const resource = "fleet.config"
	offer, err := ops.Files().Offer(resource, "ops",
		[]byte("mission=survey\nmax_alt=120\nrevision=1\n"), qos.TransferQoS{})
	if err != nil {
		return err
	}
	ops.AnnounceNow()

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	var (
		mu       sync.Mutex
		received = map[transport.NodeID][]uint64{}
		wg       sync.WaitGroup
	)
	startWatcher := func(id transport.NodeID) (*core.Node, error) {
		n, err := newNode(net, id)
		if err != nil {
			return nil, err
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = n.Files().Watch(ctx, resource, filetransfer.FetchOptions{},
				func(data []byte, rev uint64) {
					mu.Lock()
					received[id] = append(received[id], rev)
					mu.Unlock()
					fmt.Printf("[%s] applied %s rev %d (%d bytes)\n", id, resource, rev, len(data))
				})
		}()
		return n, nil
	}

	fleet := make([]*core.Node, 0, fleetSize)
	for i := 0; i < fleetSize-1; i++ {
		n, err := startWatcher(transport.NodeID(fmt.Sprintf("uav-%d", i+1)))
		if err != nil {
			return err
		}
		defer func() { _ = n.Close() }()
		fleet = append(fleet, n)
	}

	waitForRev := func(rev uint64, count int) error {
		deadline := time.Now().Add(time.Minute)
		for {
			mu.Lock()
			have := 0
			for _, revs := range received {
				for _, r := range revs {
					if r == rev {
						have++
						break
					}
				}
			}
			mu.Unlock()
			if have >= count {
				return nil
			}
			if time.Now().After(deadline) {
				return fmt.Errorf("rev %d reached %d of %d nodes", rev, have, count)
			}
			time.Sleep(10 * time.Millisecond)
		}
	}
	if err := waitForRev(1, fleetSize-1); err != nil {
		return err
	}

	fmt.Println("[ops] publishing revision 2...")
	if _, err := offer.Update([]byte("mission=survey\nmax_alt=150\nrevision=2\n")); err != nil {
		return err
	}
	if err := waitForRev(2, fleetSize-1); err != nil {
		return err
	}

	// A straggler joins late and must converge on the current revision
	// without a fresh publish.
	fmt.Println("[ops] late node joining fleet...")
	late, err := startWatcher("uav-late")
	if err != nil {
		return err
	}
	defer func() { _ = late.Close() }()
	deadline := time.Now().Add(time.Minute)
	for {
		mu.Lock()
		revs := received["uav-late"]
		mu.Unlock()
		if len(revs) > 0 && revs[len(revs)-1] == 2 {
			break
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("late node never converged: %v", revs)
		}
		time.Sleep(10 * time.Millisecond)
	}

	cancel()
	wg.Wait()
	fmt.Printf("fleet-update complete: %d nodes converged on revision 2\n", fleetSize)
	return nil
}
